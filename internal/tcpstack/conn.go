package tcpstack

import (
	"fmt"

	"acdc/internal/cc"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// State is the TCP connection state.
type State int

// Connection states (RFC 793 subset; no RST handling — the simulated
// network never generates resets).
const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateClosing
	StateTimeWait
	StateCloseWait
	StateLastAck
)

var stateNames = [...]string{"Closed", "SynSent", "SynRcvd", "Established",
	"FinWait1", "FinWait2", "Closing", "TimeWait", "CloseWait", "LastAck"}

func (s State) String() string { return stateNames[s] }

// seqRange is a half-open range of absolute sequence offsets.
type seqRange struct{ start, end int64 }

// Conn is one TCP connection endpoint. Absolute offsets count from the ISS:
// offset 0 is the SYN, data bytes occupy [1, 1+appEnd), and the FIN (when
// queued) sits at 1+appEnd.
type Conn struct {
	stack  *Stack
	key    connKey
	cfg    Config
	server bool
	state  State

	alg cc.Algorithm
	ctx cc.Ctx

	iss, irs uint32

	// --- sender ---
	sndUna, sndNxt int64
	appEnd         int64 // bytes queued by the app
	finQueued      bool
	sndWnd         int64 // peer advertised window, bytes
	sndWL          int64 // abs ack of last window update
	peerWScale     uint8
	peerMSS        int
	dupAcks        int
	inRecovery     bool
	recoverAt      int64
	inCWR          bool
	highSeq        int64
	ceWindowEnd    int64

	probeStart        sim.Time
	probeEnd          int64 // 0 = no probe outstanding
	retransSinceProbe bool
	srtt, rttvar      int64
	backoff           int

	rtoTimer, delackTimer, persistTimer, twTimer *sim.Timer

	ecnOK   bool
	sendCWR bool

	// SACK state.
	sackOK  bool       // negotiated on both SYNs
	sacked  []seqRange // sender scoreboard (absolute offsets)
	rtxNext int64      // next hole offset to retransmit this recovery

	// TSQ accounting: bytes of ours sitting in the host NIC queue.
	nicQueued int64
	tsqLimit  int64

	// output reentrancy guard.
	inOutput    bool
	outputAgain bool

	// tx batching: while bursting, transmit collects segments into txBurst
	// instead of handing them to Host.Output one at a time; output flushes
	// the burst through Host.OutputBatch so the vSwitch egress path amortizes
	// flow lookups and lock acquisitions across the window's worth of
	// segments. Capped at txBurstCap to bound latency and scratch size.
	bursting bool
	txBurst  []*packet.Packet

	// --- receiver ---
	rcvNxt   int64
	finRcvd  int64 // absolute offset of the peer FIN; -1 until seen
	eceLatch bool  // RFC 3168 echo latch
	ceAccum  bool  // DCTCP: CE seen since last ACK sent
	lastCE   bool  // DCTCP receiver CE state
	ooo      []seqRange
	lastOOO  seqRange // most recently received island (first SACK block)
	delAcked int      // full segments since last ACK

	// Per-connection scratch for SACK encoding, so loss-recovery ACKs do not
	// allocate. Both are consumed synchronously by transmit (EncodeTCP copies
	// options into the packet buffer) before the next use.
	sackScratch [packet.MaxSACKBlocks]packet.SACKBlock
	optScratch  [2 + 8*packet.MaxSACKBlocks]byte

	// --- app interface ---
	// OnRecv is called with each chunk of newly in-order-delivered payload.
	OnRecv func(n int)
	// OnEstablished fires when the three-way handshake completes.
	OnEstablished func()
	// OnPeerClose fires when the peer's FIN is delivered in order (EOF).
	OnPeerClose func()
	// OnClosed fires when the connection is fully closed and removed.
	OnClosed func()
	// OnRTTSample receives raw sender RTT samples in ns.
	OnRTTSample func(ns int64)
	// FlowTag labels packets this connection sends (workload bookkeeping).
	FlowTag uint32

	// Delivered counts in-order payload bytes handed to the app.
	Delivered int64
	// AckedBytes counts bytes the peer has acknowledged.
	AckedBytes int64

	// Counters.
	SentSegs, RecvSegs, RetransSegs, Timeouts, FastRecoveries int64
}

func newConn(st *Stack, key connKey, cfg Config, server bool) *Conn {
	c := &Conn{
		stack:   st,
		key:     key,
		cfg:     cfg,
		server:  server,
		state:   StateClosed,
		alg:     cc.New(cfg.CC),
		finRcvd: -1,
	}
	c.iss = uint32(st.Sim.Rand().Int63()) | 1
	c.ctx = cc.Ctx{
		MSS:       cfg.MSS(),
		Cwnd:      cfg.InitCwnd,
		Ssthresh:  1 << 30,
		CwndClamp: cfg.CwndClamp,
		Now:       int64(st.Sim.Now()),
	}
	c.alg.Init(&c.ctx)
	c.peerMSS = cfg.MSS()
	switch {
	case cfg.TSQLimit > 0:
		c.tsqLimit = int64(cfg.TSQLimit)
	case cfg.TSQLimit == 0:
		c.tsqLimit = 128 << 10
	default:
		c.tsqLimit = 1 << 60
	}
	c.rtoTimer = sim.NewTimer(st.Sim, c.onRTO)
	c.delackTimer = sim.NewTimer(st.Sim, c.onDelAck)
	c.persistTimer = sim.NewTimer(st.Sim, c.onPersist)
	c.twTimer = sim.NewTimer(st.Sim, c.onTimeWaitDone)
	return c
}

// --- public API ---

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.state >= StateEstablished && c.state != StateClosed }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.key.localPort }

// RemoteAddr returns the peer address and port.
func (c *Conn) RemoteAddr() (packet.Addr, uint16) { return c.key.remoteAddr, c.key.remotePort }

// Cwnd returns the congestion window in MSS units (for instrumentation).
func (c *Conn) Cwnd() float64 { return c.ctx.Cwnd }

// CwndBytes returns the congestion window in bytes.
func (c *Conn) CwndBytes() int64 { return int64(c.ctx.Cwnd * float64(c.ctx.MSS)) }

// SndWnd returns the peer's advertised window in bytes.
func (c *Conn) SndWnd() int64 { return c.sndWnd }

// SRTT returns the smoothed RTT in ns (0 before the first sample).
func (c *Conn) SRTT() int64 { return c.srtt }

// BytesQueued returns app bytes not yet acknowledged by the peer.
func (c *Conn) BytesQueued() int64 {
	q := 1 + c.appEnd - c.sndUna
	if q < 0 {
		q = 0
	}
	return q
}

// MSS returns the connection's segment size.
func (c *Conn) MSS() int { return c.ctx.MSS }

// Algorithm exposes the congestion-control algorithm (instrumentation).
func (c *Conn) Algorithm() cc.Algorithm { return c.alg }

// Send queues n virtual payload bytes for transmission.
func (c *Conn) Send(n int64) {
	if n <= 0 {
		return
	}
	if c.finQueued {
		panic("tcpstack: Send after Close")
	}
	c.appEnd += n
	c.output()
}

// Close queues a FIN after all pending data.
func (c *Conn) Close() {
	if c.finQueued {
		return
	}
	c.finQueued = true
	switch c.state {
	case StateEstablished:
		c.state = StateFinWait1
	case StateCloseWait:
		c.state = StateLastAck
	case StateSynSent, StateSynRcvd:
		// Defer: establish() moves straight to FinWait1 and the FIN goes
		// out after any queued data.
		return
	case StateClosed:
		c.teardown()
		return
	}
	c.output()
}

func (c *Conn) String() string {
	return fmt.Sprintf("conn(%s:%d>%v:%d %v una=%d nxt=%d cwnd=%.1f)",
		c.stack.Host.Name, c.key.localPort, c.key.remoteAddr, c.key.remotePort,
		c.state, c.sndUna, c.sndNxt, c.ctx.Cwnd)
}

// --- sequence mapping ---

func (c *Conn) wireSeq(abs int64) uint32 { return c.iss + uint32(abs) }
func (c *Conn) wireAck(abs int64) uint32 { return c.irs + uint32(abs) }

// unwrap maps a 32-bit wire value to the absolute offset nearest ref.
func unwrap(wire, base uint32, ref int64) int64 {
	delta := int64(int32(wire - (base + uint32(ref))))
	return ref + delta
}

func (c *Conn) absSeqFromPeer(wire uint32) int64 { return unwrap(wire, c.irs, c.rcvNxt) }
func (c *Conn) absAckFromPeer(wire uint32) int64 { return unwrap(wire, c.iss, c.sndUna) }

// --- handshake ---

func (c *Conn) sendSYN() {
	c.state = StateSynSent
	c.probeStart = c.stack.Sim.Now() // handshake RTT seed (SYN → SYN-ACK)
	flags := packet.FlagSYN
	if c.cfg.ECN != ECNOff {
		flags |= packet.FlagECE | packet.FlagCWR
	}
	c.sndNxt = 1
	c.transmit(packet.TCPFields{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.iss, Flags: flags, Window: 65535,
		Options: packet.BuildSynOptions(uint16(c.cfg.MSS()), c.cfg.WScale, c.cfg.SACK),
	}, 0, packet.NotECT)
	c.rtoTimer.Reset(c.cfg.RTOInit)
}

func (c *Conn) handleSYN(p *packet.Packet, t packet.TCP) {
	so := packet.ParseSynOptions(t.Options())
	c.irs = t.Seq()
	c.rcvNxt = 1
	if so.WScaleOK {
		c.peerWScale = so.WScale
	}
	if so.MSS > 0 && int(so.MSS) < c.ctx.MSS {
		c.ctx.MSS = int(so.MSS)
	}
	peerECN := t.HasFlags(packet.FlagECE | packet.FlagCWR)
	c.ecnOK = peerECN && c.cfg.ECN != ECNOff
	c.sackOK = so.SACKPerm && c.cfg.SACK
	c.state = StateSynRcvd
	c.probeStart = c.stack.Sim.Now() // handshake RTT seed (SYN-ACK → ACK)
	flags := packet.FlagSYN | packet.FlagACK
	if c.ecnOK {
		flags |= packet.FlagECE
	}
	c.sndNxt = 1
	c.transmit(packet.TCPFields{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.iss, Ack: c.wireAck(c.rcvNxt), Flags: flags, Window: 65535,
		Options: packet.BuildSynOptions(uint16(c.cfg.MSS()), c.cfg.WScale, c.sackOK),
	}, 0, packet.NotECT)
	c.rtoTimer.Reset(c.cfg.RTOInit)
}

func (c *Conn) handleSynAck(p *packet.Packet, t packet.TCP) {
	so := packet.ParseSynOptions(t.Options())
	c.irs = t.Seq()
	c.rcvNxt = 1
	if so.WScaleOK {
		c.peerWScale = so.WScale
	}
	if so.MSS > 0 && int(so.MSS) < c.ctx.MSS {
		c.ctx.MSS = int(so.MSS)
	}
	c.ecnOK = t.HasFlags(packet.FlagECE) && c.cfg.ECN != ECNOff
	c.sackOK = so.SACKPerm && c.cfg.SACK
	c.sndUna = 1
	c.sndWnd = int64(t.Window()) << c.peerWScale
	c.sndWL = 1
	c.rtoTimer.Stop()
	c.backoff = 0
	// Seed SRTT from the handshake, as Linux does.
	c.rttSample(int64(c.stack.Sim.Now() - c.probeStart))
	c.establish()
	c.sendAck()
	c.output()
}

func (c *Conn) establish() {
	if c.finQueued {
		// Close raced the handshake.
		c.state = StateFinWait1
	} else {
		c.state = StateEstablished
	}
	c.ceWindowEnd = c.sndNxt
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
}

// --- segment dispatch ---

func (c *Conn) receive(p *packet.Packet) {
	c.RecvSegs++
	c.ctx.Now = int64(c.stack.Sim.Now())
	t := p.TCP()
	switch c.state {
	case StateClosed:
		if c.server && t.HasFlags(packet.FlagSYN) && !t.HasFlags(packet.FlagACK) {
			c.handleSYN(p, t)
		}
		return
	case StateSynSent:
		if t.HasFlags(packet.FlagSYN | packet.FlagACK) {
			c.handleSynAck(p, t)
		}
		return
	case StateSynRcvd:
		if t.HasFlags(packet.FlagSYN) && !t.HasFlags(packet.FlagACK) {
			// Duplicate SYN: retransmit SYN-ACK on timer; ignore here.
			return
		}
		if t.HasFlags(packet.FlagACK) {
			abs := c.absAckFromPeer(t.Ack())
			if abs >= 1 {
				c.sndUna = 1
				c.sndWnd = int64(t.Window()) << c.peerWScale
				c.sndWL = 1
				c.rtoTimer.Stop()
				c.backoff = 0
				c.rttSample(int64(c.stack.Sim.Now() - c.probeStart))
				c.establish()
				// Fall through: the ACK may carry data.
				c.processSegment(p, t)
			}
		}
		return
	case StateTimeWait:
		// Retransmitted FIN from the peer: re-ACK it.
		if t.HasFlags(packet.FlagFIN) {
			c.sendAck()
		}
		return
	default:
		c.processSegment(p, t)
	}
}

func (c *Conn) processSegment(p *packet.Packet, t packet.TCP) {
	if t.HasFlags(packet.FlagACK) {
		c.processAck(p, t)
	}
	if p.PayloadLen() > 0 || t.HasFlags(packet.FlagFIN) {
		c.processData(p, t)
	}
}

// --- teardown ---

// finAbs returns the absolute offset of our FIN (valid when finQueued).
func (c *Conn) finAbs() int64 { return 1 + c.appEnd }

// finAcked reports whether the peer has acknowledged our FIN.
func (c *Conn) finAcked() bool { return c.finQueued && c.sndUna > c.finAbs() }

func (c *Conn) maybeAdvanceClose() {
	if !c.finAcked() {
		return
	}
	switch c.state {
	case StateFinWait1:
		c.state = StateFinWait2
	case StateClosing:
		c.enterTimeWait()
	case StateLastAck:
		c.teardown()
	}
}

func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.rtoTimer.Stop()
	c.persistTimer.Stop()
	c.twTimer.Reset(4 * c.cfg.RTOMin)
}

func (c *Conn) onTimeWaitDone() { c.teardown() }

func (c *Conn) teardown() {
	if c.state == StateClosed && !c.server {
		// Never-established client being closed.
	}
	c.state = StateClosed
	c.rtoTimer.Stop()
	c.delackTimer.Stop()
	c.persistTimer.Stop()
	c.twTimer.Stop()
	c.stack.remove(c)
	if c.OnClosed != nil {
		c.OnClosed()
	}
}
