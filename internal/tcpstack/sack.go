package tcpstack

import (
	"sort"

	"acdc/internal/packet"
)

// SACK support (RFC 2018 with a simplified RFC 6675 recovery): the receiver
// reports out-of-order islands; the sender keeps a scoreboard and
// retransmits only the holes, which is what keeps burst losses from
// degenerating into timeouts.

// insertRange merges r into the sorted, disjoint range list rs.
func insertRange(rs []seqRange, r seqRange) []seqRange {
	if r.end <= r.start {
		return rs
	}
	rs = append(rs, r)
	sort.Slice(rs, func(i, j int) bool { return rs[i].start < rs[j].start })
	merged := rs[:1]
	for _, x := range rs[1:] {
		last := &merged[len(merged)-1]
		if x.start <= last.end {
			if x.end > last.end {
				last.end = x.end
			}
		} else {
			merged = append(merged, x)
		}
	}
	return merged
}

// trimBelow removes range content below off.
func trimBelow(rs []seqRange, off int64) []seqRange {
	out := rs[:0]
	for _, r := range rs {
		if r.end <= off {
			continue
		}
		if r.start < off {
			r.start = off
		}
		out = append(out, r)
	}
	return out
}

// rangesBytes sums the length of all ranges.
func rangesBytes(rs []seqRange) int64 {
	var n int64
	for _, r := range rs {
		n += r.end - r.start
	}
	return n
}

// sackBlocks builds the receiver's SACK option payload from the OOO buffer:
// the most recently changed island first (RFC 2018 §4), up to 3 blocks.
func (c *Conn) sackBlocks() []packet.SACKBlock {
	if !c.sackOK || len(c.ooo) == 0 {
		return nil
	}
	blocks := c.sackScratch[:0]
	toWire := func(r seqRange) packet.SACKBlock {
		return packet.SACKBlock{Start: c.irs + uint32(r.start), End: c.irs + uint32(r.end)}
	}
	if c.lastOOO.end > c.lastOOO.start {
		blocks = append(blocks, toWire(c.lastOOO))
	}
	for _, r := range c.ooo {
		if len(blocks) >= packet.MaxSACKBlocks {
			break
		}
		if r == c.lastOOO {
			continue
		}
		blocks = append(blocks, toWire(r))
	}
	return blocks
}

// processSACK folds the ACK's SACK blocks into the sender scoreboard and
// reports whether it learned of any newly sacked bytes.
func (c *Conn) processSACK(t packet.TCP) bool {
	if !c.sackOK {
		return false
	}
	data := packet.FindOption(t.Options(), packet.OptSACK)
	if data == nil {
		return false
	}
	before := rangesBytes(c.sacked)
	for _, b := range packet.ParseSACK(data) {
		start := unwrap(b.Start, c.iss, c.sndUna)
		end := unwrap(b.End, c.iss, start)
		if start < c.sndUna {
			start = c.sndUna
		}
		if end > c.sndNxt {
			end = c.sndNxt
		}
		c.sacked = insertRange(c.sacked, seqRange{start, end})
	}
	return rangesBytes(c.sacked) > before
}

// retransmitNextHole resends the lowest unsacked, not-yet-retransmitted
// segment below the highest SACKed offset (only data with SACKed data above
// it is presumed lost, per RFC 6675). Returns false when no hole remains.
func (c *Conn) retransmitNextHole() bool {
	if len(c.sacked) == 0 {
		return false
	}
	limit := c.sacked[len(c.sacked)-1].end // highest SACKed offset
	if limit > c.recoverAt {
		limit = c.recoverAt
	}
	start := c.sndUna
	if c.rtxNext > start {
		start = c.rtxNext
	}
	for _, r := range c.sacked {
		if start >= limit {
			return false
		}
		if start < r.start {
			break // hole before this sacked island
		}
		if start < r.end {
			start = r.end
		}
	}
	if start >= limit {
		return false
	}
	segLen := int64(c.ctx.MSS)
	// Don't run into the next sacked island.
	for _, r := range c.sacked {
		if r.start > start && r.start < start+segLen {
			segLen = r.start - start
		}
	}
	if rem := limit - start; rem < segLen {
		segLen = rem
	}
	dataEnd := 1 + c.appEnd
	fin := false
	if start+segLen > dataEnd {
		segLen = dataEnd - start
		fin = c.finQueued
	}
	if segLen <= 0 && !fin {
		return false
	}
	c.RetransSegs++
	c.retransSinceProbe = true
	c.sendSegment(start, segLen, fin)
	c.rtxNext = start + segLen
	c.rtoTimer.Reset(c.currentRTO())
	return true
}
