package tcpstack

import (
	"testing"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// bench is a star topology test harness: n hosts around one switch.
type bench struct {
	s      *sim.Simulator
	sw     *netsim.Switch
	hosts  []*netsim.Host
	stacks []*Stack
}

func newBench(t *testing.T, n int, cfg Config, red netsim.REDConfig, rate int64) *bench {
	t.Helper()
	s := sim.New(7)
	b := &bench{s: s, sw: netsim.NewSwitch(s, "tor", netsim.NewSharedBuffer(9<<20, 1.0))}
	for i := 0; i < n; i++ {
		addr := packet.MakeAddr(10, 0, 0, byte(i+1))
		h := netsim.NewHost(s, "h", addr)
		h.NIC = netsim.NewLink(s, "up", rate, 5*sim.Microsecond, b.sw)
		down := netsim.NewLink(s, "down", rate, 5*sim.Microsecond, h)
		port := b.sw.AddPort(down, red)
		b.sw.AddRoute(addr, port)
		b.hosts = append(b.hosts, h)
		b.stacks = append(b.stacks, NewStack(s, h, cfg))
	}
	return b
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.MTU = 1500
	return cfg
}

// transfer runs a one-way transfer of n bytes from stack a to b and returns
// the server conn after running the simulator for d.
func (b *bench) transfer(t *testing.T, from, to int, n int64, d sim.Duration) (*Conn, *Conn) {
	t.Helper()
	var srv *Conn
	b.stacks[to].Listen(5001, func(c *Conn) { srv = c })
	cli := b.stacks[from].Dial(b.hosts[to].Addr, 5001)
	cli.Send(n)
	b.s.RunFor(d)
	if srv == nil {
		t.Fatal("no connection accepted")
	}
	return cli, srv
}

func TestHandshakeAndTransfer(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	established := 0
	b.stacks[1].Listen(5001, func(c *Conn) {
		c.OnEstablished = func() { established++ }
	})
	cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
	cli.OnEstablished = func() { established++ }
	cli.Send(100_000)
	b.s.RunFor(100 * sim.Millisecond)
	if established != 2 {
		t.Fatalf("established callbacks = %d", established)
	}
	if cli.State() != StateEstablished {
		t.Fatalf("client state = %v", cli.State())
	}
	if cli.AckedBytes != 100_000 {
		t.Fatalf("acked = %d", cli.AckedBytes)
	}
}

func TestDeliveryExactBytes(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	var got int64
	b.stacks[1].Listen(5001, func(c *Conn) {
		c.OnRecv = func(n int) { got += int64(n) }
	})
	cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
	const total = 3_456_789
	cli.Send(total)
	b.s.RunFor(200 * sim.Millisecond)
	if got != total {
		t.Fatalf("delivered %d, want %d", got, total)
	}
}

func TestMultipleSends(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	cli, srv := b.transfer(t, 0, 1, 1000, 10*sim.Millisecond)
	if srv.Delivered != 1000 {
		t.Fatalf("delivered %d", srv.Delivered)
	}
	// Messages queued later on the same connection flow too.
	cli.Send(2500)
	b.s.RunFor(10 * sim.Millisecond)
	cli.Send(499)
	b.s.RunFor(10 * sim.Millisecond)
	if srv.Delivered != 3999 {
		t.Fatalf("delivered %d, want 3999", srv.Delivered)
	}
}

func TestThroughputApproachesLineRate(t *testing.T) {
	cfg := DefaultConfig() // 9K MTU
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 10e9)
	_, srv := b.transfer(t, 0, 1, 1<<40, 50*sim.Millisecond)
	rate := float64(srv.Delivered) * 8 / b.s.Now().Seconds()
	if rate < 9e9 {
		t.Fatalf("throughput = %.2f Gbps, want >9", rate/1e9)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	var srv *Conn
	b.stacks[1].Listen(5001, func(c *Conn) {
		srv = c
		c.OnEstablished = func() { c.Send(50_000) }
	})
	cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
	cli.Send(70_000)
	b.s.RunFor(100 * sim.Millisecond)
	if srv.Delivered != 70_000 {
		t.Fatalf("server got %d", srv.Delivered)
	}
	if cli.Delivered != 50_000 {
		t.Fatalf("client got %d", cli.Delivered)
	}
}

func TestWindowScaleNegotiation(t *testing.T) {
	cfg := smallCfg()
	cfg.WScale = 9
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	cli, srv := b.transfer(t, 0, 1, 1000, 10*sim.Millisecond)
	if cli.peerWScale != 9 || srv.peerWScale != 9 {
		t.Fatalf("wscale: cli=%d srv=%d", cli.peerWScale, srv.peerWScale)
	}
	// Advertised window reconstructed at sender ≈ RcvBuf.
	if cli.SndWnd() < int64(cfg.RcvBuf)-(1<<9) || cli.SndWnd() > int64(cfg.RcvBuf) {
		t.Fatalf("sndWnd = %d, want ≈ %d", cli.SndWnd(), cfg.RcvBuf)
	}
}

func TestMSSNegotiationPicksMin(t *testing.T) {
	big := DefaultConfig() // MSS 8960
	small := smallCfg()    // MSS 1460
	s := sim.New(7)
	sw := netsim.NewSwitch(s, "tor", nil)
	mk := func(i byte, cfg Config) (*netsim.Host, *Stack) {
		addr := packet.MakeAddr(10, 0, 0, i)
		h := netsim.NewHost(s, "h", addr)
		h.NIC = netsim.NewLink(s, "up", 1e9, sim.Microsecond, sw)
		down := netsim.NewLink(s, "down", 1e9, sim.Microsecond, h)
		sw.AddRoute(addr, sw.AddPort(down, netsim.REDConfig{}))
		return h, NewStack(s, h, cfg)
	}
	_, stBig := mk(1, big)
	hSmall, stSmall := mk(2, small)
	_ = stSmall
	stSmall.Listen(5001, func(*Conn) {})
	cli := stBig.Dial(hSmall.Addr, 5001)
	cli.Send(10_000)
	s.RunFor(50 * sim.Millisecond)
	if cli.MSS() != 1460 {
		t.Fatalf("negotiated MSS = %d, want 1460", cli.MSS())
	}
}

func TestECNNegotiation(t *testing.T) {
	cfg := smallCfg()
	cfg.ECN = ECNRFC3168
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	cli, srv := b.transfer(t, 0, 1, 1000, 10*sim.Millisecond)
	if !cli.ecnOK || !srv.ecnOK {
		t.Fatal("ECN not negotiated between two capable stacks")
	}

	// Capable client, incapable server: not negotiated.
	off := smallCfg()
	b2 := newBench(t, 2, off, netsim.REDConfig{}, 1e9)
	b2.stacks[0].Cfg.ECN = ECNRFC3168
	cli2, srv2 := b2.transfer(t, 0, 1, 1000, 10*sim.Millisecond)
	if cli2.ecnOK || srv2.ecnOK {
		t.Fatal("ECN negotiated with incapable peer")
	}
}

func TestECTMarkingOnData(t *testing.T) {
	cfg := smallCfg()
	cfg.ECN = ECNRFC3168
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	var ectData, notECTAcks int
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.PayloadLen() > 0 && p.IP().ECN() == packet.ECT0 {
			ectData++
		}
		if p.PayloadLen() == 0 && p.IP().ECN() == packet.NotECT {
			notECTAcks++
		}
		return p, nil
	}
	b.transfer(t, 0, 1, 100_000, 50*sim.Millisecond)
	if ectData == 0 {
		t.Fatal("no ECT-marked data packets")
	}
}

func TestFastRetransmit(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	// Drop exactly one mid-stream data packet.
	dropped := false
	count := 0
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.PayloadLen() > 0 {
			count++
			if count == 20 && !dropped {
				dropped = true
				return nil, nil
			}
		}
		return p, nil
	}
	cli, srv := b.transfer(t, 0, 1, 500_000, 100*sim.Millisecond)
	if !dropped {
		t.Fatal("drop never triggered")
	}
	if srv.Delivered != 500_000 {
		t.Fatalf("delivered %d", srv.Delivered)
	}
	if cli.FastRecoveries == 0 {
		t.Fatal("no fast recovery")
	}
	if cli.Timeouts != 0 {
		t.Fatalf("recovered via RTO (%d) instead of fast retransmit", cli.Timeouts)
	}
}

func TestRTORecoversTailDrop(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	// Drop the last 3 data packets of the flow once (not retransmissions):
	// too few dupacks → RTO must fire.
	const total = 30_000 // ~21 segments
	segs := total/1460 + 1
	count := 0
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.PayloadLen() > 0 {
			count++
			if count >= segs-2 && count <= segs {
				return nil, nil
			}
		}
		return p, nil
	}
	cli, srv := b.transfer(t, 0, 1, total, 500*sim.Millisecond)
	if srv.Delivered != total {
		t.Fatalf("delivered %d, want %d", srv.Delivered, total)
	}
	if cli.Timeouts == 0 {
		t.Fatal("expected an RTO")
	}
}

func TestRTOMinRespected(t *testing.T) {
	cfg := smallCfg()
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	cli, _ := b.transfer(t, 0, 1, 10_000, 50*sim.Millisecond)
	if cli.currentRTO() < cfg.RTOMin {
		t.Fatalf("RTO %v below floor %v", cli.currentRTO(), cfg.RTOMin)
	}
}

func TestRandomLossEventuallyDelivers(t *testing.T) {
	// Property-style: with 2% random loss everything is still delivered.
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	rng := b.s.Rand()
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.PayloadLen() > 0 && rng.Float64() < 0.02 {
			return nil, nil
		}
		return p, nil
	}
	_, srv := b.transfer(t, 0, 1, 2_000_000, 3*sim.Second)
	if srv.Delivered != 2_000_000 {
		t.Fatalf("delivered %d under random loss", srv.Delivered)
	}
	if srv.OOORanges() != 0 {
		t.Fatalf("OOO buffer not drained: %d ranges", srv.OOORanges())
	}
}

func TestFlowControlLimitsInflight(t *testing.T) {
	cfg := smallCfg()
	cfg.RcvBuf = 8 * 1460 // 8 segments
	cfg.WScale = 0
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	maxInflight := int64(0)
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		return p, nil
	}
	cli, srv := b.transfer(t, 0, 1, 1_000_000, 100*sim.Millisecond)
	_ = maxInflight
	if srv.Delivered != 1_000_000 {
		t.Fatalf("delivered %d", srv.Delivered)
	}
	if cli.SndWnd() > int64(cfg.RcvBuf) {
		t.Fatalf("sndWnd %d beyond rcvbuf", cli.SndWnd())
	}
}

func TestSubMSSSegmentsWhenWindowTiny(t *testing.T) {
	// Peer advertises less than one MSS: sender must emit sub-MSS segments,
	// the behaviour AC/DC's byte-granularity RWND floor relies on.
	cfg := smallCfg()
	cfg.RcvBuf = 700 // < MSS
	cfg.WScale = 0
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	var subMSS int
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if n := p.PayloadLen(); n > 0 && n < 1460 {
			subMSS++
		}
		return p, nil
	}
	_, srv := b.transfer(t, 0, 1, 7000, 200*sim.Millisecond)
	if srv.Delivered != 7000 {
		t.Fatalf("delivered %d", srv.Delivered)
	}
	if subMSS == 0 {
		t.Fatal("no sub-MSS segments under tiny window")
	}
}

func TestIgnoreRwndStack(t *testing.T) {
	cfg := smallCfg()
	cfg.RcvBuf = 2 * 1460
	cfg.WScale = 0
	cfg.IgnoreRwnd = true
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	var maxPayloadBurst int64
	var inflight int64
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		inflight += int64(p.PayloadLen())
		if inflight > maxPayloadBurst {
			maxPayloadBurst = inflight
		}
		return p, nil
	}
	b.transfer(t, 0, 1, 1_000_000, 50*sim.Millisecond)
	// A conforming stack would never exceed 2 segments in flight; the
	// non-conforming one blows past the advertised window.
	if maxPayloadBurst <= 2*1460 {
		t.Fatalf("IgnoreRwnd stack stayed within window: %d", maxPayloadBurst)
	}
}

func TestCloseHandshake(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	var srv *Conn
	srvClosed, cliClosed, peerEOF := false, false, false
	b.stacks[1].Listen(5001, func(c *Conn) {
		srv = c
		c.OnPeerClose = func() {
			peerEOF = true
			c.Close() // close in response
		}
		c.OnClosed = func() { srvClosed = true }
	})
	cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
	cli.OnClosed = func() { cliClosed = true }
	cli.Send(10_000)
	b.s.Schedule(20*sim.Millisecond, func() { cli.Close() })
	b.s.RunFor(2 * sim.Second)
	if !peerEOF {
		t.Fatal("peer never saw EOF")
	}
	if srv.Delivered != 10_000 {
		t.Fatalf("delivered %d before close", srv.Delivered)
	}
	if !srvClosed || !cliClosed {
		t.Fatalf("teardown incomplete: srv=%v cli=%v", srvClosed, cliClosed)
	}
	if b.stacks[0].NumConns() != 0 || b.stacks[1].NumConns() != 0 {
		t.Fatalf("conns leaked: %d %d", b.stacks[0].NumConns(), b.stacks[1].NumConns())
	}
}

func TestCloseWithPendingData(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	var srv *Conn
	b.stacks[1].Listen(5001, func(c *Conn) { srv = c })
	cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
	cli.Send(200_000)
	cli.Close() // FIN must trail all the data
	b.s.RunFor(500 * sim.Millisecond)
	if srv.Delivered != 200_000 {
		t.Fatalf("delivered %d", srv.Delivered)
	}
	if srv.State() != StateCloseWait {
		t.Fatalf("server state = %v, want CloseWait", srv.State())
	}
}

func TestRTTSampleMagnitude(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	cli, _ := b.transfer(t, 0, 1, 100_000, 100*sim.Millisecond)
	// Base RTT = 4 hops × 5us + serialization; SRTT must land in [20us, 1ms].
	if cli.SRTT() < 20_000 || cli.SRTT() > 1_000_000 {
		t.Fatalf("SRTT = %dns", cli.SRTT())
	}
}

func TestSlowStartThenCA(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	cli, _ := b.transfer(t, 0, 1, 5_000_000, 200*sim.Millisecond)
	if cli.Cwnd() <= DefaultConfig().InitCwnd {
		t.Fatalf("cwnd never grew: %v", cli.Cwnd())
	}
}

func TestStackDropsUnmatchedSegments(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	// Packet to a port nobody listens on.
	p := packet.Build(b.hosts[0].Addr, b.hosts[1].Addr, packet.NotECT,
		packet.TCPFields{SrcPort: 1, DstPort: 9999, Flags: packet.FlagACK, Window: 100}, 0)
	b.hosts[0].Output(p)
	b.s.RunFor(sim.Millisecond)
	if b.stacks[1].DroppedSegs != 1 {
		t.Fatalf("DroppedSegs = %d", b.stacks[1].DroppedSegs)
	}
}

func TestSynRetransmission(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	// Drop the first SYN only.
	first := true
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.TCP().HasFlags(packet.FlagSYN) && first {
			first = false
			return nil, nil
		}
		return p, nil
	}
	cli, srv := b.transfer(t, 0, 1, 1000, sim.Second)
	if cli.State() != StateEstablished {
		t.Fatalf("client state = %v", cli.State())
	}
	if srv.Delivered != 1000 {
		t.Fatalf("delivered %d", srv.Delivered)
	}
}

func TestDelayedAckCoalesces(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	var acks, dataSegs int
	b.hosts[1].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.PayloadLen() == 0 && p.TCP().HasFlags(packet.FlagACK) && !p.TCP().HasFlags(packet.FlagSYN) {
			acks++
		}
		return p, nil
	}
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.PayloadLen() > 0 {
			dataSegs++
		}
		return p, nil
	}
	b.transfer(t, 0, 1, 1_000_000, 100*sim.Millisecond)
	if acks == 0 || dataSegs == 0 {
		t.Fatal("no traffic observed")
	}
	// Delayed ACKs: at most ~1 ACK per 2 data segments (plus handshake slop).
	if float64(acks) > 0.7*float64(dataSegs) {
		t.Fatalf("too many ACKs: %d for %d data segments", acks, dataSegs)
	}
}

func TestUnwrapRoundTrip(t *testing.T) {
	// Unwrap must recover absolute offsets across the 32-bit boundary.
	base := uint32(0xffff_ff00)
	for _, abs := range []int64{0, 1, 255, 256, 1 << 20, 1 << 33, 1<<33 + 12345} {
		wire := base + uint32(abs)
		for _, refDelta := range []int64{-1000, 0, 1000} {
			ref := abs + refDelta
			if ref < 0 {
				ref = 0
			}
			if got := unwrap(wire, base, ref); got != abs {
				t.Fatalf("unwrap(%#x, ref=%d) = %d, want %d", wire, ref, got, abs)
			}
		}
	}
}

func TestLargeTransferCrossesSeqWrap(t *testing.T) {
	if testing.Short() {
		t.Skip("long transfer")
	}
	// Force the ISS high so the 32-bit wire sequence wraps mid-flow.
	b := newBench(t, 2, DefaultConfig(), netsim.REDConfig{}, 10e9)
	var srv *Conn
	b.stacks[1].Listen(5001, func(c *Conn) { srv = c })
	// Build the client by hand so the ISS is pinned just below the 32-bit
	// wrap before the SYN goes out.
	st := b.stacks[0]
	cli := newConn(st, connKey{40000, b.hosts[1].Addr, 5001}, st.Cfg, false)
	cli.iss = 0xffff_0000
	st.conns[cli.key] = cli
	cli.sendSYN()
	const total = 64 << 20
	cli.Send(total)
	b.s.RunFor(200 * sim.Millisecond)
	if srv == nil || srv.Delivered != total {
		t.Fatalf("wraparound transfer delivered %v", srv.Delivered)
	}
}
