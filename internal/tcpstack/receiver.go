package tcpstack

import (
	"acdc/internal/packet"
)

// processData handles the payload and FIN portion of an incoming segment.
func (c *Conn) processData(p *packet.Packet, t packet.TCP) {
	absSeq := c.absSeqFromPeer(t.Seq())
	plen := int64(p.PayloadLen())
	end := absSeq + plen
	ce := p.IP().ECN() == packet.CE

	immediate := false

	// ECN receiver accounting (only for payload-bearing segments).
	if plen > 0 && c.ecnOK {
		switch c.cfg.ECN {
		case ECNDCTCP:
			if ce {
				c.ceAccum = true
			}
			if ce != c.lastCE {
				// DCTCP state-change rule: ACK immediately so the sender's
				// marking-fraction estimate stays accurate.
				c.lastCE = ce
				immediate = true
			}
		case ECNRFC3168:
			if ce {
				c.eceLatch = true
			}
		}
	}
	if t.HasFlags(packet.FlagCWR) {
		c.eceLatch = false
	}

	if plen > 0 {
		switch {
		case end <= c.rcvNxt:
			// Stale duplicate: re-ACK immediately.
			immediate = true
		case absSeq > c.rcvNxt:
			// Out of order: buffer and send a duplicate ACK.
			c.addOOO(absSeq, end)
			immediate = true
		default:
			delivered := end - c.rcvNxt
			c.rcvNxt = end
			delivered += c.drainOOO()
			c.Delivered += delivered
			if c.OnRecv != nil {
				c.OnRecv(int(delivered))
			}
			c.delAcked++
			if c.delAcked >= c.cfg.DelAckSegs {
				immediate = true
			}
		}
	}

	// FIN handling: it occupies the sequence slot after the payload.
	if t.HasFlags(packet.FlagFIN) {
		finAt := end
		if c.finRcvd < 0 {
			c.finRcvd = finAt
		}
		if finAt == c.rcvNxt {
			c.rcvNxt++
			immediate = true
			c.peerClosed()
		} else if finAt < c.rcvNxt {
			immediate = true // duplicate FIN
		}
	}

	if immediate {
		c.sendAck()
	} else if plen > 0 {
		c.delackTimer.ArmIfIdle(c.cfg.DelAckDelay)
	}
}

func (c *Conn) peerClosed() {
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
	case StateFinWait1:
		if c.finAcked() {
			c.enterTimeWait()
		} else {
			c.state = StateClosing
		}
	case StateFinWait2:
		c.enterTimeWait()
	}
	if c.OnPeerClose != nil {
		c.OnPeerClose()
	}
}

// addOOO inserts [start, end) into the out-of-order buffer, merging
// overlaps, and remembers the island for the first SACK block.
func (c *Conn) addOOO(start, end int64) {
	c.ooo = insertRange(c.ooo, seqRange{start, end})
	// The first SACK block must describe the island containing the segment
	// that just arrived (RFC 2018 §4).
	c.lastOOO = seqRange{start, end}
	for _, r := range c.ooo {
		if r.start <= start && end <= r.end {
			c.lastOOO = r
			break
		}
	}
}

// drainOOO advances rcvNxt through any now-contiguous buffered ranges and
// returns the bytes freed.
func (c *Conn) drainOOO() int64 {
	var freed int64
	for len(c.ooo) > 0 && c.ooo[0].start <= c.rcvNxt {
		r := c.ooo[0]
		if r.end > c.rcvNxt {
			freed += r.end - c.rcvNxt
			c.rcvNxt = r.end
		}
		c.ooo = c.ooo[1:]
	}
	if len(c.ooo) == 0 {
		c.lastOOO = seqRange{}
	}
	return freed
}

// OOORanges returns the count of buffered out-of-order ranges (tests).
func (c *Conn) OOORanges() int { return len(c.ooo) }

// echoECE reports whether outgoing segments should carry ECE right now.
func (c *Conn) echoECE() bool {
	if !c.ecnOK {
		return false
	}
	switch c.cfg.ECN {
	case ECNDCTCP:
		return c.ceAccum
	case ECNRFC3168:
		return c.eceLatch
	}
	return false
}

// advWindow computes the receive window field to advertise. Applications in
// this simulator consume instantly, so the window is the full buffer scaled
// down; it still exercises the RWND path AC/DC rewrites.
func (c *Conn) advWindow() uint16 {
	w := c.cfg.RcvBuf >> c.cfg.WScale
	if w > 65535 {
		w = 65535
	}
	return uint16(w)
}

// sendAck emits a pure ACK reflecting the receiver state.
func (c *Conn) sendAck() {
	if c.state == StateClosed || c.state == StateSynSent {
		return
	}
	flags := packet.FlagACK
	if c.echoECE() {
		flags |= packet.FlagECE
	}
	c.transmit(packet.TCPFields{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.wireSeq(c.sndNxt), Ack: c.wireAck(c.rcvNxt),
		Flags: flags, Window: c.advWindow(),
		Options: packet.EncodeSACK(c.optScratch[:0], c.sackBlocks()),
	}, 0, packet.NotECT)
	c.ackSent()
}

// ackSent resets delayed-ACK state after any segment carrying an ACK.
func (c *Conn) ackSent() {
	c.delAcked = 0
	c.delackTimer.Stop()
	if c.cfg.ECN == ECNDCTCP {
		// The echo for accumulated CEs has been delivered.
		c.ceAccum = c.lastCE
	}
}

// onDelAck fires when the delayed-ACK timer expires.
func (c *Conn) onDelAck() {
	if c.delAcked > 0 || c.ceAccum || c.eceLatch {
		c.sendAck()
	}
}
