package tcpstack

import (
	"fmt"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// connKey identifies a connection from the stack's point of view.
type connKey struct {
	localPort  uint16
	remoteAddr packet.Addr
	remotePort uint16
}

// Stack is one host's transport layer. It registers as the host's Demux and
// owns every Conn terminating at that host.
type Stack struct {
	Sim  *sim.Simulator
	Host *netsim.Host
	Cfg  Config

	conns     map[connKey]*Conn
	listeners map[uint16]func(*Conn)
	nextPort  uint16

	// Counters.
	DeliveredSegs int64
	DroppedSegs   int64 // segments with no matching connection
}

// NewStack creates a stack bound to host with the given default config and
// installs it as the host's demux.
func NewStack(s *sim.Simulator, host *netsim.Host, cfg Config) *Stack {
	st := &Stack{
		Sim:       s,
		Host:      host,
		Cfg:       cfg,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]func(*Conn)),
		nextPort:  40000,
	}
	host.Demux = st
	// NIC tx-completion feedback for TSQ backpressure.
	if host.NIC != nil {
		host.NIC.OnTxDone = st.txFree
	}
	host.OnTxFree = st.txFree
	return st
}

// txFree credits a connection's TSQ budget when one of its packets leaves
// the egress path (serialized by the NIC or dropped before the wire).
func (st *Stack) txFree(p *packet.Packet) {
	ip := p.IP()
	if !ip.Valid() || ip.Protocol() != packet.ProtoTCP {
		return
	}
	t := ip.TCP()
	if !t.Valid() {
		return
	}
	key := connKey{t.SrcPort(), ip.Dst(), t.DstPort()}
	if c, ok := st.conns[key]; ok {
		c.txCompleted(int64(p.IPLen()))
	}
}

// Listen registers an accept callback for the given port. Incoming SYNs to
// the port create server-side connections; onAccept runs when the connection
// is created (before it is established) so the app can set callbacks.
func (st *Stack) Listen(port uint16, onAccept func(*Conn)) {
	st.listeners[port] = onAccept
}

// Dial creates a client connection to raddr:rport using the stack's default
// config and sends the SYN.
func (st *Stack) Dial(raddr packet.Addr, rport uint16) *Conn {
	return st.DialCfg(raddr, rport, st.Cfg)
}

// DialCfg creates a client connection with a per-connection config override.
func (st *Stack) DialCfg(raddr packet.Addr, rport uint16, cfg Config) *Conn {
	lport := st.allocPort(raddr, rport)
	c := newConn(st, connKey{lport, raddr, rport}, cfg, false)
	st.conns[c.key] = c
	c.sendSYN()
	return c
}

func (st *Stack) allocPort(raddr packet.Addr, rport uint16) uint16 {
	for i := 0; i < 1<<16; i++ {
		p := st.nextPort
		st.nextPort++
		if st.nextPort < 40000 {
			st.nextPort = 40000
		}
		if _, busy := st.conns[connKey{p, raddr, rport}]; !busy {
			if _, listening := st.listeners[p]; !listening {
				return p
			}
		}
	}
	panic("tcpstack: out of ephemeral ports")
}

// HandlePacket implements netsim.Handler: demux to a connection, or create
// one for a SYN to a listening port.
func (st *Stack) HandlePacket(p *packet.Packet) {
	// The stack terminates every segment handed to it: receive() copies what
	// it needs (reassembly tracks byte ranges, not packets), so the packet is
	// recycled on every exit path below.
	ip := p.IP()
	if !ip.Valid() || ip.Protocol() != packet.ProtoTCP {
		st.DroppedSegs++
		st.Host.Pool.Put(p)
		return
	}
	t := ip.TCP()
	if !t.Valid() {
		st.DroppedSegs++
		st.Host.Pool.Put(p)
		return
	}
	key := connKey{t.DstPort(), ip.Src(), t.SrcPort()}
	c, ok := st.conns[key]
	if !ok {
		if t.HasFlags(packet.FlagSYN) && !t.HasFlags(packet.FlagACK) {
			if onAccept, listening := st.listeners[t.DstPort()]; listening {
				c = newConn(st, key, st.Cfg, true)
				st.conns[key] = c
				onAccept(c)
				st.DeliveredSegs++
				c.receive(p)
				st.Host.Pool.Put(p)
				return
			}
		}
		st.DroppedSegs++
		st.Host.Pool.Put(p)
		return
	}
	st.DeliveredSegs++
	c.receive(p)
	st.Host.Pool.Put(p)
}

// remove deletes a closed connection from the demux table.
func (st *Stack) remove(c *Conn) {
	delete(st.conns, c.key)
}

// NumConns returns the number of live connections (for tests).
func (st *Stack) NumConns() int { return len(st.conns) }

func (st *Stack) String() string {
	return fmt.Sprintf("stack(%s conns=%d)", st.Host.Name, len(st.conns))
}
