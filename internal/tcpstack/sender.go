package tcpstack

import (
	"acdc/internal/cc"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

// ccCtx aliases cc.Ctx for the once-per-RTT boundary interface below.
type ccCtx = cc.Ctx

// processAck handles the acknowledgement portion of an incoming segment.
func (c *Conn) processAck(p *packet.Packet, t packet.TCP) {
	absAck := c.absAckFromPeer(t.Ack())
	if absAck > c.sndNxt {
		absAck = c.sndNxt // ack of data we never sent; clamp
	}
	// Window update (simplified SND.WL: any ACK at or above snd_una).
	wndBefore := c.sndWnd
	if absAck >= c.sndWL && absAck >= c.sndUna {
		c.sndWnd = int64(t.Window()) << c.peerWScale
		c.sndWL = absAck
		if c.sndWnd > 0 {
			c.persistTimer.Stop()
		}
	}
	ece := t.HasFlags(packet.FlagECE) && c.ecnOK
	newSack := c.processSACK(t)

	acked := absAck - c.sndUna
	switch {
	case acked > 0:
		c.ackAdvance(absAck, acked, ece)
	case acked == 0 && p.PayloadLen() == 0 && t.Flags()&(packet.FlagSYN|packet.FlagFIN) == 0 &&
		c.sndNxt > c.sndUna && absAck == c.sndUna && (c.sndWnd == wndBefore || newSack):
		// RFC 5681 duplicate ACK: no data, no SYN/FIN, nothing acked, data
		// outstanding, and no window update (AC/DC's RWND rewrites make the
		// window-update exclusion matter) — unless the ACK carries new SACK
		// information, which always counts.
		c.dupAck()
	}
	c.maybeAdvanceClose()
	c.output()
}

func (c *Conn) ackAdvance(absAck, acked int64, ece bool) {
	c.sndUna = absAck
	c.sacked = trimBelow(c.sacked, c.sndUna)
	if c.rtxNext < c.sndUna {
		c.rtxNext = c.sndUna
	}
	c.AckedBytes = absAck - 1
	if c.AckedBytes > c.appEnd {
		c.AckedBytes = c.appEnd
	}
	c.dupAcks = 0

	// RTT sampling with Karn's rule: only when nothing was retransmitted
	// since the probe segment was sent.
	if c.probeEnd > 0 && absAck >= c.probeEnd {
		if !c.retransSinceProbe {
			c.rttSample(int64(c.stack.Sim.Now() - c.probeStart))
		}
		c.probeEnd = 0
	}

	c.alg.AckedWithECN(&c.ctx, int(acked), ece)

	if ece && !c.inCWR && !c.inRecovery {
		c.enterCWR()
	}

	if c.inRecovery {
		if absAck >= c.recoverAt {
			// Full ACK: recovery complete, deflate to ssthresh.
			c.inRecovery = false
			c.ctx.Cwnd = c.ctx.Ssthresh
		} else {
			// Partial ACK: the next hole is lost too. With SACK the hole is
			// located from the scoreboard; NewReno assumes it is snd_una.
			if !c.sackOK || !c.retransmitNextHole() {
				c.retransmitOne(c.sndUna)
			}
			c.ctx.Cwnd -= float64(acked) / float64(c.ctx.MSS)
			c.ctx.Cwnd++ // partial-ACK re-inflation
		}
	} else if !c.inCWR {
		c.alg.CongAvoid(&c.ctx, int(acked))
	}

	// Once-per-RTT boundary: DCTCP α folding, Vegas/Illinois updates.
	if absAck >= c.ceWindowEnd {
		c.callWindowBoundary()
		c.ceWindowEnd = c.sndNxt
	}
	if c.inCWR && absAck >= c.highSeq {
		c.inCWR = false
	}
	c.ctx.ClampCwnd(c.cfg.MinCwnd)

	// RTO management: restart while data is outstanding.
	if c.sndUna < c.sndNxt || (c.finQueued && !c.finAcked() && c.sndNxt > c.finAbs()) {
		c.backoff = 0
		c.rtoTimer.Reset(c.currentRTO())
	} else {
		c.rtoTimer.Stop()
		c.backoff = 0
	}
}

func (c *Conn) dupAck() {
	c.dupAcks++
	if c.dupAcks == 3 && !c.inRecovery {
		c.enterFastRecovery()
	} else if c.inRecovery {
		// Each dupack signals one packet left the network, buying one
		// transmission: with SACK that goes to the next hole repair first;
		// only when no hole remains does the window inflate so output can
		// send new data (NewReno always inflates).
		if c.sackOK {
			if !c.retransmitNextHole() {
				c.ctx.Cwnd++
			}
		} else {
			c.ctx.Cwnd++
		}
	}
}

func (c *Conn) enterCWR() {
	c.ctx.Ssthresh = c.alg.SsthreshOnLoss(&c.ctx)
	c.ctx.Cwnd = c.ctx.Ssthresh
	c.ctx.ClampCwnd(c.cfg.MinCwnd)
	c.inCWR = true
	c.highSeq = c.sndNxt
	c.sendCWR = true
}

func (c *Conn) enterFastRecovery() {
	c.FastRecoveries++
	c.ctx.Ssthresh = c.alg.SsthreshOnLoss(&c.ctx)
	c.ctx.Cwnd = c.ctx.Ssthresh + 3
	c.ctx.ClampCwnd(c.cfg.MinCwnd)
	c.inRecovery = true
	c.recoverAt = c.sndNxt
	c.rtxNext = c.sndUna
	if !c.sackOK || !c.retransmitNextHole() {
		c.retransmitOne(c.sndUna)
	}
}

func (c *Conn) callWindowBoundary() {
	type boundary interface{ WindowBoundary(*ccCtx) }
	if b, ok := c.alg.(boundary); ok {
		b.WindowBoundary(&c.ctx)
	}
}

// rttSample folds one RTT measurement into SRTT/RTTVAR (RFC 6298).
func (c *Conn) rttSample(ns int64) {
	if ns <= 0 {
		ns = 1
	}
	if c.srtt == 0 {
		c.srtt = ns
		c.rttvar = ns / 2
	} else {
		d := c.srtt - ns
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + ns) / 8
	}
	c.ctx.SRTT = c.srtt
	if c.ctx.MinRTT == 0 || ns < c.ctx.MinRTT {
		c.ctx.MinRTT = ns
	}
	c.alg.PktsAcked(&c.ctx, ns)
	if c.OnRTTSample != nil {
		c.OnRTTSample(ns)
	}
}

// currentRTO computes the backed-off RTO with the configured floor.
func (c *Conn) currentRTO() sim.Duration {
	var base sim.Duration
	if c.srtt == 0 {
		base = c.cfg.RTOInit
	} else {
		base = sim.Duration(c.srtt + 4*c.rttvar)
	}
	if base < c.cfg.RTOMin {
		base = c.cfg.RTOMin
	}
	rto := base << uint(c.backoff)
	if rto > 4*sim.Second {
		rto = 4 * sim.Second
	}
	return rto
}

// onRTO fires on retransmission timeout.
func (c *Conn) onRTO() {
	c.ctx.Now = int64(c.stack.Sim.Now())
	switch c.state {
	case StateSynSent:
		c.backoff++
		c.Timeouts++
		c.sendSYNRetrans()
		return
	case StateSynRcvd:
		c.backoff++
		c.Timeouts++
		c.resendSynAck()
		return
	case StateClosed, StateTimeWait:
		return
	}
	if c.sndUna >= c.sndNxt {
		return // nothing outstanding
	}
	c.Timeouts++
	c.ctx.Ssthresh = c.alg.SsthreshOnLoss(&c.ctx)
	c.ctx.Cwnd = 1
	c.ctx.ClampCwnd(1)
	c.alg.OnRTO(&c.ctx)
	c.inRecovery = false
	c.inCWR = false
	c.dupAcks = 0
	c.sacked = nil
	c.rtxNext = 0
	// Go-back-N: rewind and retransmit from snd_una.
	c.sndNxt = c.sndUna
	c.probeEnd = 0
	c.backoff++
	c.output()
	c.rtoTimer.Reset(c.currentRTO())
}

func (c *Conn) sendSYNRetrans() {
	flags := packet.FlagSYN
	if c.cfg.ECN != ECNOff {
		flags |= packet.FlagECE | packet.FlagCWR
	}
	c.RetransSegs++
	c.transmit(packet.TCPFields{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.iss, Flags: flags, Window: 65535,
		Options: packet.BuildSynOptions(uint16(c.cfg.MSS()), c.cfg.WScale, c.cfg.SACK),
	}, 0, packet.NotECT)
	c.rtoTimer.Reset(c.currentRTO())
}

func (c *Conn) resendSynAck() {
	flags := packet.FlagSYN | packet.FlagACK
	if c.ecnOK {
		flags |= packet.FlagECE
	}
	c.RetransSegs++
	c.transmit(packet.TCPFields{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.iss, Ack: c.wireAck(c.rcvNxt), Flags: flags, Window: 65535,
		Options: packet.BuildSynOptions(uint16(c.cfg.MSS()), c.cfg.WScale, c.sackOK),
	}, 0, packet.NotECT)
	c.rtoTimer.Reset(c.currentRTO())
}

// onPersist probes a zero window.
func (c *Conn) onPersist() {
	if c.sndWnd > 0 || c.state == StateClosed {
		return
	}
	if c.sndNxt <= c.appEnd { // unsent data pending
		c.sendSegment(c.sndNxt, 1, false)
	} else {
		// Re-probe with a pure ACK.
		c.sendAck()
	}
	c.persistTimer.Reset(c.currentRTO())
}

// output transmits as much as the congestion and flow-control windows allow.
// Reentrant calls (e.g. a synchronous egress drop refunding TSQ budget from
// inside transmit) are flattened into iterations of the outer call.
func (c *Conn) output() {
	if c.inOutput {
		c.outputAgain = true
		return
	}
	c.inOutput = true
	defer func() { c.inOutput = false }()
	for {
		c.outputAgain = false
		c.bursting = true
		c.outputLoop()
		c.bursting = false
		c.flushBurst()
		if !c.outputAgain {
			return
		}
	}
}

// txBurstCap bounds how many segments accumulate before a flush: one batch
// hook traversal per 64 segments captures nearly all of the amortization
// while keeping the burst buffer small.
const txBurstCap = 64

// flushBurst hands the accumulated segments to the host in one batch. Any
// re-entrant output triggered by the dispatch (synchronous egress drop or
// NIC rejection crediting TSQ) is flattened into the caller's loop by the
// inOutput guard, so txBurst is never appended to while it is being flushed.
func (c *Conn) flushBurst() {
	if len(c.txBurst) == 0 {
		return
	}
	c.stack.Host.OutputBatch(c.txBurst)
	clear(c.txBurst)
	c.txBurst = c.txBurst[:0]
}

func (c *Conn) outputLoop() {
	if c.state == StateClosed || c.state == StateSynSent || c.state == StateSynRcvd ||
		c.state == StateTimeWait {
		return
	}
	dataEnd := 1 + c.appEnd
	for {
		wnd := c.CwndBytes()
		if !c.cfg.IgnoreRwnd && c.sndWnd < wnd {
			wnd = c.sndWnd
		}
		usable := c.sndUna + wnd - c.sndNxt
		if c.sndNxt < dataEnd {
			// TSQ: don't queue more than tsqLimit into the NIC; resume on
			// tx completion.
			if c.nicQueued >= c.tsqLimit {
				return
			}
			// Unsent payload remains.
			if usable <= 0 {
				if c.sndWnd == 0 && c.sndUna == c.sndNxt {
					c.persistTimer.ArmIfIdle(c.currentRTO())
				}
				return
			}
			segLen := int64(c.ctx.MSS)
			if r := dataEnd - c.sndNxt; r < segLen {
				segLen = r
			}
			if usable < segLen {
				segLen = usable
			}
			fin := c.finQueued && c.sndNxt+segLen == dataEnd
			c.sendSegment(c.sndNxt, segLen, fin)
			c.sndNxt += segLen
			if fin {
				c.sndNxt++
			}
			continue
		}
		// Payload all sent; maybe a lone FIN remains.
		if c.finQueued && c.sndNxt == dataEnd {
			c.sendSegment(c.sndNxt, 0, true)
			c.sndNxt++
			continue
		}
		return
	}
}

// retransmitOne resends the segment starting at abs.
func (c *Conn) retransmitOne(abs int64) {
	dataEnd := 1 + c.appEnd
	segLen := int64(c.ctx.MSS)
	if r := dataEnd - abs; r < segLen {
		segLen = r
	}
	if segLen < 0 {
		segLen = 0
	}
	fin := c.finQueued && abs+segLen == dataEnd
	if segLen == 0 && !fin {
		return
	}
	c.RetransSegs++
	c.retransSinceProbe = true
	c.sendSegment(abs, segLen, fin)
	c.rtoTimer.Reset(c.currentRTO())
}

// sendSegment builds and transmits one data/FIN segment at absolute offset
// abs. It also carries the current ACK state (TCP segments always do).
func (c *Conn) sendSegment(abs, segLen int64, fin bool) {
	flags := packet.FlagACK
	if fin {
		flags |= packet.FlagFIN
	}
	if segLen > 0 {
		flags |= packet.FlagPSH
	}
	if c.echoECE() {
		flags |= packet.FlagECE
	}
	if c.sendCWR && segLen > 0 {
		flags |= packet.FlagCWR
		c.sendCWR = false
	}
	ecn := packet.NotECT
	if c.ecnOK && segLen > 0 {
		ecn = packet.ECT0
	}
	c.transmit(packet.TCPFields{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.wireSeq(abs), Ack: c.wireAck(c.rcvNxt),
		Flags: flags, Window: c.advWindow(),
		Options: packet.EncodeSACK(c.optScratch[:0], c.sackBlocks()),
	}, int(segLen), ecn)
	c.ackSent()

	// Arm the RTT probe on fresh (non-retransmitted) data.
	if c.probeEnd == 0 && abs+segLen > c.probeEnd && abs >= c.sndNxt {
		c.probeStart = c.stack.Sim.Now()
		c.probeEnd = abs + segLen
		if fin {
			c.probeEnd++
		}
		c.retransSinceProbe = false
	}
	c.rtoTimer.ArmIfIdle(c.currentRTO())
}

// transmit finalizes a packet and hands it to the host's egress path.
func (c *Conn) transmit(f packet.TCPFields, payloadLen int, ecn packet.ECN) {
	// Linux's DCTCP (tcp_ca_needs_ecn) marks every packet ECN-capable —
	// SYNs and pure ACKs included — so WRED marks them instead of dropping.
	if c.cfg.ECN == ECNDCTCP {
		ecn = packet.ECT0
	}
	p := packet.BuildIn(c.stack.Host.Pool, c.stack.Host.Addr, c.key.remoteAddr, ecn, f, payloadLen)
	p.FlowTag = c.FlowTag
	c.SentSegs++
	c.nicQueued += int64(p.IPLen())
	if c.bursting {
		c.txBurst = append(c.txBurst, p)
		if len(c.txBurst) >= txBurstCap {
			// Mid-loop flush: bursting stays set; transmit is never reached
			// re-entrantly (the inOutput guard flattens nested output calls),
			// so the buffer is safe to drain and reuse here.
			c.stack.Host.OutputBatch(c.txBurst)
			clear(c.txBurst)
			c.txBurst = c.txBurst[:0]
		}
		return
	}
	c.stack.Host.Output(p)
}

// txCompleted credits TSQ budget when a packet of ours leaves the host
// (serialized or dropped) and resumes output if it was TSQ-throttled.
func (c *Conn) txCompleted(n int64) {
	throttled := c.nicQueued >= c.tsqLimit
	c.nicQueued -= n
	if c.nicQueued < 0 {
		c.nicQueued = 0
	}
	if throttled && c.nicQueued < c.tsqLimit && c.state != StateClosed {
		c.output()
	}
}
