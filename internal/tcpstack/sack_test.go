package tcpstack

import (
	"testing"
	"testing/quick"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

func TestInsertRangeMergesAndSorts(t *testing.T) {
	var rs []seqRange
	rs = insertRange(rs, seqRange{10, 20})
	rs = insertRange(rs, seqRange{30, 40})
	rs = insertRange(rs, seqRange{15, 35}) // bridges both
	if len(rs) != 1 || rs[0] != (seqRange{10, 40}) {
		t.Fatalf("merge: %v", rs)
	}
	rs = insertRange(rs, seqRange{50, 50}) // empty ignored
	if len(rs) != 1 {
		t.Fatalf("empty range inserted: %v", rs)
	}
}

func TestTrimBelow(t *testing.T) {
	rs := []seqRange{{10, 20}, {30, 40}}
	rs = trimBelow(rs, 15)
	if len(rs) != 2 || rs[0] != (seqRange{15, 20}) {
		t.Fatalf("trim partial: %v", rs)
	}
	rs = trimBelow(rs, 25)
	if len(rs) != 1 || rs[0] != (seqRange{30, 40}) {
		t.Fatalf("trim whole: %v", rs)
	}
}

// Property: insertRange keeps the list sorted, disjoint, and
// content-preserving (total bytes only grow, bounded by the union).
func TestInsertRangeProperty(t *testing.T) {
	prop := func(pairs []uint16) bool {
		var rs []seqRange
		covered := map[int64]bool{}
		for i := 0; i+1 < len(pairs); i += 2 {
			a, b := int64(pairs[i]%500), int64(pairs[i]%500)+int64(pairs[i+1]%50)
			rs = insertRange(rs, seqRange{a, b})
			for x := a; x < b; x++ {
				covered[x] = true
			}
		}
		var total int64
		prevEnd := int64(-1)
		for _, r := range rs {
			if r.start >= r.end || r.start <= prevEnd {
				return false // unsorted, touching, or empty
			}
			prevEnd = r.end
			total += r.end - r.start
		}
		return total == int64(len(covered))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSACKWireRoundTrip(t *testing.T) {
	blocks := []packet.SACKBlock{{Start: 100, End: 200}, {Start: 300, End: 400}, {Start: 500, End: 600}, {Start: 700, End: 800}}
	enc := packet.EncodeSACK(nil, blocks)
	// Build an ACK carrying it and parse back.
	p := packet.Build(packet.MakeAddr(1, 1, 1, 1), packet.MakeAddr(2, 2, 2, 2),
		packet.NotECT, packet.TCPFields{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK,
			Window: 100, Options: enc}, 0)
	data := packet.FindOption(p.TCP().Options(), packet.OptSACK)
	got := packet.ParseSACK(data)
	if len(got) != packet.MaxSACKBlocks {
		t.Fatalf("blocks = %d, want %d (cap)", len(got), packet.MaxSACKBlocks)
	}
	for i, b := range got {
		if b != blocks[i] {
			t.Fatalf("block %d = %+v", i, b)
		}
	}
	if packet.EncodeSACK(nil, nil) != nil {
		t.Fatal("empty encode should be nil")
	}
}

func TestSACKNegotiation(t *testing.T) {
	cfg := smallCfg() // SACK on by default
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	cli, srv := b.transfer(t, 0, 1, 1000, 10*sim.Millisecond)
	if !cli.sackOK || !srv.sackOK {
		t.Fatal("SACK not negotiated between capable stacks")
	}

	off := smallCfg()
	off.SACK = false
	b2 := newBench(t, 2, off, netsim.REDConfig{}, 1e9)
	b2.stacks[0].Cfg.SACK = true // capable client, incapable server
	cli2, srv2 := b2.transfer(t, 0, 1, 1000, 10*sim.Millisecond)
	if cli2.sackOK || srv2.sackOK {
		t.Fatal("SACK negotiated with incapable peer")
	}
}

// burstLossRun drops `burst` consecutive data segments once mid-flow and
// returns the client connection after the transfer completes.
func burstLossRun(t *testing.T, sackOn bool, burst int) (*Conn, *Conn) {
	t.Helper()
	cfg := smallCfg()
	cfg.SACK = sackOn
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	count, dropped := 0, 0
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.PayloadLen() > 0 {
			count++
			if count >= 30 && dropped < burst {
				dropped++
				return nil, nil
			}
		}
		return p, nil
	}
	cli, srv := b.transfer(t, 0, 1, 500_000, 2*sim.Second)
	if srv.Delivered != 500_000 {
		t.Fatalf("delivered %d", srv.Delivered)
	}
	return cli, srv
}

func TestSACKRecoversBurstLossWithoutRTO(t *testing.T) {
	cli, _ := burstLossRun(t, true, 5)
	if cli.Timeouts != 0 {
		t.Fatalf("SACK recovery hit %d RTOs on a 5-segment burst", cli.Timeouts)
	}
	if cli.FastRecoveries == 0 {
		t.Fatal("no fast recovery")
	}
	// SACK retransmits only the holes: ~burst retransmissions, not go-back-N.
	if cli.RetransSegs > 10 {
		t.Fatalf("SACK retransmitted %d segments for a 5-segment burst", cli.RetransSegs)
	}
}

func TestNewRenoNeedsMoreRoundsForBurst(t *testing.T) {
	withSack, _ := burstLossRun(t, true, 5)
	without, _ := burstLossRun(t, false, 5)
	// NewReno repairs one hole per RTT (or times out); SACK must not be
	// slower and usually retransmits no more.
	if withSack.RetransSegs > without.RetransSegs+2 {
		t.Fatalf("SACK retransmitted more than NewReno: %d vs %d",
			withSack.RetransSegs, without.RetransSegs)
	}
}

func TestSACKWithHeavyRandomLoss(t *testing.T) {
	cfg := smallCfg()
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	rng := b.s.Rand()
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.PayloadLen() > 0 && rng.Float64() < 0.05 {
			return nil, nil
		}
		return p, nil
	}
	_, srv := b.transfer(t, 0, 1, 1_000_000, 5*sim.Second)
	if srv.Delivered != 1_000_000 {
		t.Fatalf("delivered %d under 5%% loss with SACK", srv.Delivered)
	}
}

func TestSACKBlockOrderingMostRecentFirst(t *testing.T) {
	cfg := smallCfg()
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	// Capture SACK options emitted by the receiver.
	var firstBlocks []packet.SACKBlock
	b.hosts[1].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if d := packet.FindOption(p.TCP().Options(), packet.OptSACK); d != nil && firstBlocks == nil {
			firstBlocks = packet.ParseSACK(d)
		}
		return p, nil
	}
	// Drop one early segment to create an island.
	count := 0
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.PayloadLen() > 0 {
			count++
			if count == 5 {
				return nil, nil
			}
		}
		return p, nil
	}
	b.transfer(t, 0, 1, 100_000, 100*sim.Millisecond)
	if firstBlocks == nil {
		t.Fatal("no SACK blocks observed")
	}
	if firstBlocks[0].End <= firstBlocks[0].Start {
		t.Fatalf("degenerate first block %+v", firstBlocks[0])
	}
}
