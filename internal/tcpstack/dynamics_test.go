package tcpstack

import (
	"testing"

	"acdc/internal/netsim"
	"acdc/internal/sim"
)

// These integration tests check the congestion dynamics the paper's
// evaluation relies on: DCTCP parks the bottleneck queue near the marking
// threshold K with no loss, while CUBIC without ECN fills the shared buffer
// and drops.

func runTwoToOne(t *testing.T, cfg Config, red netsim.REDConfig, d sim.Duration) (*bench, []*Conn) {
	t.Helper()
	b := newBench(t, 3, cfg, red, 10e9)
	var srvs []*Conn
	b.stacks[2].Listen(5001, func(c *Conn) { srvs = append(srvs, c) })
	c0 := b.stacks[0].Dial(b.hosts[2].Addr, 5001)
	c1 := b.stacks[1].Dial(b.hosts[2].Addr, 5001)
	c0.Send(1 << 40)
	c1.Send(1 << 40)
	b.s.RunFor(d)
	if len(srvs) != 2 {
		t.Fatalf("accepted %d conns", len(srvs))
	}
	return b, srvs
}

func TestDCTCPHoldsQueueNearK(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CC = "dctcp"
	cfg.ECN = ECNDCTCP
	const K = 90_000
	b, srvs := runTwoToOne(t, cfg, netsim.REDConfig{MarkThresholdBytes: K}, 100*sim.Millisecond)

	bottleneck := b.sw.Port(2)
	if bottleneck.Stats.Marks == 0 {
		t.Fatal("no CE marks: DCTCP feedback loop not exercised")
	}
	if drops := b.sw.TotalDrops(); drops != 0 {
		t.Fatalf("DCTCP dropped %d packets", drops)
	}
	// Queue must stay bounded near K, far below the 9MB buffer. Allow a few
	// RTTs of overshoot (slow-start ends with a burst).
	if q := bottleneck.Stats.MaxQueueBytes; q > 12*K {
		t.Fatalf("max queue %dB, want bounded near K=%d", q, K)
	}
	// Both flows should get roughly half the link.
	total := srvs[0].Delivered + srvs[1].Delivered
	rate := float64(total) * 8 / b.s.Now().Seconds()
	if rate < 8.5e9 {
		t.Fatalf("aggregate rate %.2f Gbps, want >8.5", rate/1e9)
	}
	lo, hi := srvs[0].Delivered, srvs[1].Delivered
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(lo)/float64(hi) < 0.5 {
		t.Fatalf("unfair split: %d vs %d", lo, hi)
	}
}

func TestCubicFillsSharedBuffer(t *testing.T) {
	cfg := DefaultConfig() // cubic, ECN off
	b, srvs := runTwoToOne(t, cfg, netsim.REDConfig{}, 200*sim.Millisecond)

	bottleneck := b.sw.Port(2)
	// With drop-tail against a 9MB shared buffer (DT α=1 → up to ~4.5MB for
	// one port), CUBIC must drive the queue into the megabytes and drop.
	if q := bottleneck.Stats.MaxQueueBytes; q < 1<<20 {
		t.Fatalf("max queue only %dB; CUBIC should fill the buffer", q)
	}
	if b.sw.TotalDrops() == 0 {
		t.Fatal("no drops: CUBIC never hit the buffer limit")
	}
	total := srvs[0].Delivered + srvs[1].Delivered
	rate := float64(total) * 8 / b.s.Now().Seconds()
	if rate < 8e9 {
		t.Fatalf("aggregate rate %.2f Gbps, want >8 despite drops", rate/1e9)
	}
}

func TestDCTCPQueueFarBelowCubicQueue(t *testing.T) {
	// The Figure 2 contrast: same offered load, an order of magnitude less
	// queueing under DCTCP.
	cubic := DefaultConfig()
	bC, _ := runTwoToOne(t, cubic, netsim.REDConfig{}, 100*sim.Millisecond)

	dctcp := DefaultConfig()
	dctcp.CC = "dctcp"
	dctcp.ECN = ECNDCTCP
	bD, _ := runTwoToOne(t, dctcp, netsim.REDConfig{MarkThresholdBytes: 90_000}, 100*sim.Millisecond)

	qC := bC.sw.Port(2).AvgQueueBytes()
	qD := bD.sw.Port(2).AvgQueueBytes()
	if qD*5 > qC {
		t.Fatalf("DCTCP avg queue %f not far below CUBIC's %f", qD, qC)
	}
}

func TestTimelyKeepsQueueModerateWithoutECN(t *testing.T) {
	// TIMELY needs no ECN: RTT gradients alone should hold the standing
	// queue far below what loss-driven CUBIC builds on the same drop-tail
	// bottleneck.
	cfg := DefaultConfig()
	cfg.CC = "timely"
	b, srvs := runTwoToOne(t, cfg, netsim.REDConfig{}, 100*sim.Millisecond)
	qTimely := b.sw.Port(2).AvgQueueBytes()

	cubic := DefaultConfig()
	bC, _ := runTwoToOne(t, cubic, netsim.REDConfig{}, 100*sim.Millisecond)
	qCubic := bC.sw.Port(2).AvgQueueBytes()

	if qTimely*3 > qCubic {
		t.Fatalf("TIMELY avg queue %.0fB not far below CUBIC's %.0fB", qTimely, qCubic)
	}
	total := srvs[0].Delivered + srvs[1].Delivered
	if rate := float64(total) * 8 / b.s.Now().Seconds(); rate < 7e9 {
		t.Fatalf("TIMELY throughput %.2f Gbps too low", rate/1e9)
	}
}
