package tcpstack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
)

func TestZeroWindowPersist(t *testing.T) {
	// Receiver advertises a zero window (tiny buffer, scale 0 rounding);
	// the sender must probe and eventually complete when the window opens.
	cfg := smallCfg()
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	// Force the server to advertise 0 by shrinking its buffer below the
	// scale quantum.
	srvCfg := cfg
	srvCfg.RcvBuf = 100
	srvCfg.WScale = 8 // 100 >> 8 = 0 → advertised window 0
	b.stacks[1].Cfg = srvCfg
	var srv *Conn
	b.stacks[1].Listen(5001, func(c *Conn) { srv = c })
	cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
	cli.Send(5000)
	b.s.RunFor(2 * sim.Second)
	if srv == nil {
		t.Fatal("no accept")
	}
	// The persist machinery must keep the connection alive and move at
	// least some data via window probes.
	if srv.Delivered == 0 {
		t.Fatal("zero-window connection made no progress")
	}
}

func TestTimeWaitReAcksRetransmittedFIN(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	var srv *Conn
	b.stacks[1].Listen(5001, func(c *Conn) {
		srv = c
		c.OnPeerClose = func() { c.Close() }
	})
	cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
	cli.Send(1000)
	b.s.Schedule(10*sim.Millisecond, cli.Close)
	// Drop the client's final ACK of the server FIN exactly once so the
	// server retransmits its FIN into the client's TIME_WAIT.
	dropped := false
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		tc := p.TCP()
		if !dropped && tc.HasFlags(packet.FlagACK) && !tc.HasFlags(packet.FlagFIN) &&
			p.PayloadLen() == 0 && cli.State() == StateTimeWait {
			dropped = true
			return nil, nil
		}
		return p, nil
	}
	b.s.RunFor(3 * sim.Second)
	_ = srv
	if !dropped {
		t.Skip("timing never produced the TIME_WAIT ACK drop")
	}
	if b.stacks[1].NumConns() != 0 {
		t.Fatalf("server conn stuck in %v", srv.State())
	}
}

func TestSimultaneousClose(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	var srv *Conn
	b.stacks[1].Listen(5001, func(c *Conn) { srv = c })
	cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
	cli.Send(1000)
	b.s.RunFor(20 * sim.Millisecond)
	// Close both ends in the same instant.
	cli.Close()
	srv.Close()
	b.s.RunFor(3 * sim.Second)
	if b.stacks[0].NumConns() != 0 || b.stacks[1].NumConns() != 0 {
		t.Fatalf("simultaneous close leaked conns: cli=%v srv=%v", cli.State(), srv.State())
	}
}

func TestDelayedAckTimerFires(t *testing.T) {
	// A single odd segment (below DelAckSegs) must still get acked within
	// the delack timeout, unblocking the sender.
	cfg := smallCfg()
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	cli, srv := b.transfer(t, 0, 1, 500, 20*sim.Millisecond) // one small segment
	if srv.Delivered != 500 {
		t.Fatalf("delivered %d", srv.Delivered)
	}
	if cli.AckedBytes != 500 {
		t.Fatalf("acked %d; delack timer never fired?", cli.AckedBytes)
	}
}

func TestClassicECNLatchUntilCWR(t *testing.T) {
	cfg := smallCfg()
	cfg.ECN = ECNRFC3168
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9)
	var srv *Conn
	b.stacks[1].Listen(5001, func(c *Conn) { srv = c })
	cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
	cli.Send(200_000)

	// Mark exactly one data packet CE in flight; count ECE echoes and CWR.
	marked := false
	var eceSeen, cwrSeen int
	count := 0
	b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.PayloadLen() > 0 {
			count++
			if count == 10 && !marked {
				marked = true
				p.IP().SetECN(packet.CE)
			}
			if p.TCP().HasFlags(packet.FlagCWR) {
				cwrSeen++
			}
		}
		return p, nil
	}
	b.hosts[1].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
		if p.TCP().HasFlags(packet.FlagECE) {
			eceSeen++
		}
		return p, nil
	}
	b.s.RunFor(100 * sim.Millisecond)
	if srv.Delivered != 200_000 {
		t.Fatalf("delivered %d", srv.Delivered)
	}
	if eceSeen == 0 {
		t.Fatal("CE never echoed as ECE")
	}
	if cwrSeen == 0 {
		t.Fatal("sender never sent CWR after reducing")
	}
	if cli.Timeouts != 0 || cli.FastRecoveries != 0 {
		t.Fatal("ECN reduction should not involve loss recovery")
	}
}

func TestCwndClampConfig(t *testing.T) {
	cfg := smallCfg()
	cfg.CwndClamp = 4
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 10e9)
	cli, _ := b.transfer(t, 0, 1, 1<<30, 50*sim.Millisecond)
	if cli.Cwnd() > 4.01 {
		t.Fatalf("cwnd %v above clamp", cli.Cwnd())
	}
}

func TestDCTCPAlphaTracksMarkingUnderLightLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CC = "dctcp"
	cfg.ECN = ECNDCTCP
	b := newBench(t, 3, cfg, netsim.REDConfig{MarkThresholdBytes: 90_000}, 10e9)
	var srv *Conn
	b.stacks[2].Listen(5001, func(c *Conn) { srv = c })
	c1 := b.stacks[0].Dial(b.hosts[2].Addr, 5001)
	c1.Send(1 << 40)
	b.s.RunFor(50 * sim.Millisecond)
	_ = srv
	// Single flow at line rate: marks are rare, α must decay low.
	type alphaer interface{ Alpha(*ccCtx) float64 }
	if a, ok := c1.Algorithm().(alphaer); ok {
		if got := a.Alpha(&c1.ctx); got > 0.5 {
			t.Fatalf("alpha %v should decay under light marking", got)
		}
	} else {
		t.Fatal("algorithm is not DCTCP")
	}
}

// Property: a transfer delivered across random per-packet loss (up to 10%)
// always arrives complete and in order (the OOO buffer drains).
func TestLossyDeliveryProperty(t *testing.T) {
	prop := func(seed int64, lossPct uint8) bool {
		loss := float64(lossPct%10) / 100
		b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
		rng := rand.New(rand.NewSource(seed))
		b.hosts[0].Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
			if p.PayloadLen() > 0 && rng.Float64() < loss {
				return nil, nil
			}
			return p, nil
		}
		var srv *Conn
		b.stacks[1].Listen(5001, func(c *Conn) { srv = c })
		cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
		const total = 300_000
		cli.Send(total)
		b.s.RunFor(5 * sim.Second)
		return srv != nil && srv.Delivered == total && srv.OOORanges() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: delivered bytes never exceed sent bytes and OnRecv sums to
// Delivered, across random message patterns.
func TestRecvAccountingProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
		var sum int64
		var cbTotal int64
		var srv *Conn
		b.stacks[1].Listen(5001, func(c *Conn) {
			srv = c
			c.OnRecv = func(n int) { cbTotal += int64(n) }
		})
		cli := b.stacks[0].Dial(b.hosts[1].Addr, 5001)
		for _, s := range sizes {
			n := int64(s%5000) + 1
			sum += n
			cli.Send(n)
		}
		if sum == 0 {
			return true
		}
		b.s.RunFor(2 * sim.Second)
		return srv != nil && srv.Delivered == sum && cbTotal == sum
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestStateStringAndConnString(t *testing.T) {
	b := newBench(t, 2, smallCfg(), netsim.REDConfig{}, 1e9)
	cli, _ := b.transfer(t, 0, 1, 100, 10*sim.Millisecond)
	if StateEstablished.String() != "Established" {
		t.Fatal("state string")
	}
	if s := cli.String(); s == "" {
		t.Fatal("conn string empty")
	}
	if cli.BytesQueued() != 0 {
		t.Fatalf("queued %d after full ack", cli.BytesQueued())
	}
}

func TestTSQBoundsNICQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TSQLimit = 64 << 10
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 1e9) // slow 1G NIC
	var maxQ int
	probe := func() {}
	probe = func() {
		if q := b.hosts[0].NIC.QueueBytes(); q > maxQ {
			maxQ = q
		}
		b.s.Schedule(100*sim.Microsecond, probe)
	}
	b.s.Schedule(0, probe)
	b.transfer(t, 0, 1, 1<<30, 50*sim.Millisecond)
	// One flow: NIC queue must stay near the TSQ limit, not the cwnd.
	if maxQ > 64<<10+2*9000 {
		t.Fatalf("NIC queue %d exceeds TSQ bound", maxQ)
	}
	if maxQ == 0 {
		t.Fatal("no queue observed")
	}
}

func TestUnlimitedTSQ(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TSQLimit = -1
	b := newBench(t, 2, cfg, netsim.REDConfig{}, 10e9)
	_, srv := b.transfer(t, 0, 1, 10_000_000, 50*sim.Millisecond)
	if srv.Delivered != 10_000_000 {
		t.Fatalf("delivered %d with unlimited TSQ", srv.Delivered)
	}
}
