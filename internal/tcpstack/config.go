// Package tcpstack implements the guest-VM TCP endpoints: connection setup
// with window-scale negotiation, NewReno loss recovery (fast retransmit,
// partial ACKs, RTO with Karn's algorithm), delayed ACKs, flow control,
// RFC 3168 and DCTCP-style ECN, and pluggable congestion control from
// internal/cc. It models the Linux 3.18 stacks the paper runs in guests.
//
// Internally all sequence arithmetic uses absolute 64-bit byte offsets from
// the ISS; offsets are mapped to 32-bit wire sequence numbers at the packet
// boundary, so multi-gigabyte flows cannot hit wraparound bugs.
package tcpstack

import (
	"acdc/internal/sim"
)

// ECNMode selects the endpoint's ECN behaviour.
type ECNMode int

const (
	// ECNOff: no ECN negotiation; packets are Not-ECT (the paper's CUBIC
	// baseline guests).
	ECNOff ECNMode = iota
	// ECNRFC3168: classic ECN — latch ECE until CWR, react once per window.
	ECNRFC3168
	// ECNDCTCP: DCTCP-style per-segment CE echo with immediate ACKs on CE
	// state changes.
	ECNDCTCP
)

func (m ECNMode) String() string {
	switch m {
	case ECNOff:
		return "off"
	case ECNRFC3168:
		return "rfc3168"
	default:
		return "dctcp"
	}
}

// Config parameterizes a Stack. The zero value is not usable; call
// DefaultConfig and override.
type Config struct {
	// MTU is the link MTU; MSS = MTU − 40. The paper evaluates 1500 and 9000.
	MTU int
	// CC is the congestion-control algorithm name (see internal/cc.New).
	CC string
	// ECN selects the ECN mode. DCTCP requires ECNDCTCP to function.
	ECN ECNMode
	// InitCwnd is the initial window in MSS (RFC 6928's 10).
	InitCwnd float64
	// MinCwnd is the window floor in MSS. Linux's DCTCP floor of 2 is the
	// behaviour the paper's incast analysis calls out.
	MinCwnd float64
	// CwndClamp caps cwnd in MSS (snd_cwnd_clamp); 0 = unlimited.
	CwndClamp float64
	// RcvBuf is the receive buffer in bytes (advertised window ceiling).
	RcvBuf int
	// WScale is the receive window scale factor to advertise.
	WScale uint8
	// RTOMin floors the retransmission timeout; the paper sets 10ms.
	RTOMin sim.Duration
	// RTOInit is the timeout before the first RTT sample.
	RTOInit sim.Duration
	// DelAckDelay is the delayed-ACK timer; DelAckSegs full segments force
	// an immediate ACK.
	DelAckDelay sim.Duration
	DelAckSegs  int
	// IgnoreRwnd, when true, makes the sender disregard the peer's
	// advertised receive window — a non-conforming stack used to evaluate
	// AC/DC's policing mechanism (§3.3).
	IgnoreRwnd bool
	// SACK enables selective acknowledgements (RFC 2018) with SACK-based
	// loss recovery; the paper's testbed sets tcp_sack=1.
	SACK bool
	// TSQLimit bounds the bytes a connection may have queued in the host
	// NIC, modelling Linux's TCP Small Queues: without it a self-clocked
	// flow parks its whole window in its own NIC queue. 0 = the 128KB
	// default; negative = unlimited.
	TSQLimit int
}

// DefaultConfig returns the paper's system settings: 9KB MTU, CUBIC,
// RTOmin=10ms, 4MB receive buffer with window scale 7.
func DefaultConfig() Config {
	return Config{
		MTU:         9000,
		CC:          "cubic",
		ECN:         ECNOff,
		InitCwnd:    10,
		MinCwnd:     2,
		RcvBuf:      4 << 20,
		WScale:      7,
		RTOMin:      10 * sim.Millisecond,
		RTOInit:     100 * sim.Millisecond,
		DelAckDelay: 500 * sim.Microsecond,
		DelAckSegs:  2,
		SACK:        true,
		TSQLimit:    128 << 10,
	}
}

// MSS returns the segment payload size for the configured MTU.
func (c Config) MSS() int { return c.MTU - 40 }
