package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of a registry, suitable for encoding,
// differencing, and merging. All maps are owned by the snapshot; mutating
// them does not affect the registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is one histogram's frozen state. Counts has
// len(Bounds)+1 entries; the last is the overflow bucket.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Mean returns the average observation, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// inside the containing bucket. The overflow bucket reports the last bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1] // overflow: clamp
			}
			hi := h.Bounds[i]
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	if len(h.Bounds) > 0 {
		return h.Bounds[len(h.Bounds)-1]
	}
	return 0
}

// Counter returns the named counter's value, or 0 when absent — callers
// never need to nil-check the map.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the named gauge's value, or 0 when absent.
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Delta returns a snapshot whose counters are s minus prev — the activity
// in one interval. Gauges and histograms are instantaneous, so the later
// (s's) values are kept as-is.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     s.Gauges,
		Histograms: s.Histograms,
	}
	for n, v := range s.Counters {
		out.Counters[n] = v - prev.Counters[n]
	}
	return out
}

// Merge sums snapshots from several registries (e.g. one per host's
// vSwitch) into one operator-wide view. Counters and gauges add; histograms
// add bucket-wise when bounds match and otherwise keep the first seen.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, s := range snaps {
		for n, v := range s.Counters {
			out.Counters[n] += v
		}
		for n, v := range s.Gauges {
			out.Gauges[n] += v
		}
		for n, h := range s.Histograms {
			have, ok := out.Histograms[n]
			if !ok {
				out.Histograms[n] = copyHist(h)
				continue
			}
			if len(have.Bounds) != len(h.Bounds) {
				continue
			}
			have.Count += h.Count
			have.Sum += h.Sum
			for i := range have.Counts {
				have.Counts[i] += h.Counts[i]
			}
			out.Histograms[n] = have
		}
	}
	return out
}

func copyHist(h HistogramSnapshot) HistogramSnapshot {
	out := h
	out.Counts = append([]int64(nil), h.Counts...)
	out.Bounds = append([]float64(nil), h.Bounds...)
	return out
}

// Text renders the snapshot as sorted `name value` lines; histograms are
// summarized as count/mean/p50/p99. The format is stable, one instrument
// per line, for grep-ability and golden tests.
func (s Snapshot) Text() string {
	var b strings.Builder
	for _, n := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "%s %d\n", n, s.Counters[n])
	}
	for _, n := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "%s %d\n", n, s.Gauges[n])
	}
	for _, n := range sortedKeys(s.Histograms) {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%s count=%d mean=%.4g p50=%.4g p99=%.4g\n",
			n, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99))
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
