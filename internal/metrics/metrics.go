// Package metrics is the datapath observability layer: a low-overhead,
// concurrency-safe registry of counters, gauges, and histograms designed to
// sit on the vSwitch hot path (internal/core's Egress/Ingress). The paper's
// argument — that the operator, not the tenant, should own congestion
// control — only holds in production if the operator can see what the
// datapath is doing: CE fractions, RWND rewrites vs. no-ops, PACK/FACK
// traffic, policing drops, flow-table churn, and the virtual CWND/α
// distributions used to tune K, α-gain, and β.
//
// Design constraints, in order:
//
//   - Update cost. Counter.Add is a single atomic add on a cache-line-padded
//     stripe chosen per goroutine; there are no locks, maps, or allocations
//     anywhere on the update path. Registration (Registry.Counter etc.)
//     takes a mutex, so callers resolve instruments once at setup and hold
//     the handles.
//   - Concurrency. All instruments are safe for concurrent update and
//     concurrent Snapshot; snapshots are internally consistent per
//     instrument (not across instruments, which would require stopping the
//     world).
//   - Nil tolerance. Every instrument method is a no-op on a nil receiver
//     and every Registry constructor returns nil from a nil registry, so a
//     datapath can be compiled with metrics disabled by simply not creating
//     the registry — the hot path pays one predictable branch.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numStripes is the number of cache-line-padded cells per Counter. Eight
// stripes are enough to keep the handful of goroutines a vSwitch datapath
// runs on (one per NIC queue) off each other's cache lines.
const numStripes = 8

// stripePad is an atomic int64 padded to a cache line so adjacent stripes
// never share one (false sharing is the whole point of striping).
type stripePad struct {
	v atomic.Int64
	_ [56]byte
}

// stripeIndex derives a cheap, well-distributed stripe index from the
// address of a stack variable: goroutines have distinct stacks, so
// concurrent writers spread across stripes, while a single goroutine keeps
// hitting the same cache line. Go exposes no portable processor or
// goroutine ID; this is the stdlib-only substitute. The uintptr conversion
// does not let the pointer escape, so the marker stays on the stack.
func stripeIndex() uint64 {
	var marker byte
	return (uint64(uintptr(unsafe.Pointer(&marker))) >> 10) % numStripes
}

// Counter is a monotonically increasing striped atomic counter.
type Counter struct {
	stripes [numStripes]stripePad
}

// Add adds d to the counter. No-op on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.stripes[stripeIndex()].v.Add(d)
}

// Inc adds one to the counter. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes. Returns 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].v.Load()
	}
	return t
}

// LazyCounter is a counter that registers itself in its registry only on the
// first increment. Degradation-path counters (fail-open passthroughs, table
// evictions, fault injections) use it so a healthy run's snapshots contain no
// trace of failure modes that never happened — text encodings, golden tests,
// and operator dashboards stay byte-identical until the event actually fires.
type LazyCounter struct {
	reg  *Registry
	name string
	c    atomic.Pointer[Counter]
}

// Lazy returns a counter named name that joins the registry on first use.
// A nil registry yields a nil LazyCounter, which is a no-op.
func (r *Registry) Lazy(name string) *LazyCounter {
	if r == nil {
		return nil
	}
	return &LazyCounter{reg: r, name: name}
}

func (l *LazyCounter) resolve() *Counter {
	if c := l.c.Load(); c != nil {
		return c
	}
	// Registry.Counter is idempotent, so concurrent first increments all
	// resolve to the same instrument; the CAS only dedups the pointer store.
	c := l.reg.Counter(l.name)
	l.c.CompareAndSwap(nil, c)
	return c
}

// Add adds d, registering the counter if this is its first update. No-op on
// a nil receiver.
func (l *LazyCounter) Add(d int64) {
	if l == nil {
		return
	}
	l.resolve().Add(d)
}

// Inc adds one. No-op on a nil receiver.
func (l *LazyCounter) Inc() { l.Add(1) }

// Value returns the count so far; 0 on a nil receiver or before first use
// (reading does not register the counter).
func (l *LazyCounter) Value() int64 {
	if l == nil {
		return 0
	}
	return l.c.Load().Value() // Counter.Value is nil-safe before first use
}

// Gauge is an instantaneous value (e.g. flow-table size). Unlike Counter it
// supports Set and negative Adds; it is a single atomic because gauges are
// updated at state-change frequency, not per packet.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (may be negative). No-op on a nil receiver.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value. Returns 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into fixed buckets. Bounds are the
// inclusive upper edges of the first len(Bounds) buckets; one overflow
// bucket catches everything above the last bound. Observe is lock-free: a
// linear scan over the (small) bound slice plus two atomic adds.
type Histogram struct {
	bounds  []float64
	buckets []stripePad // len(bounds)+1, padded: buckets are contended
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// newHistogram copies bounds (must be ascending).
func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]stripePad, len(b)+1)}
}

// Observe records x. No-op on a nil receiver.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && x > h.bounds[i] {
		i++
	}
	h.buckets[i].v.Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := floatBits(bitsFloat(old) + x)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    bitsFloat(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].v.Load()
	}
	return s
}

// Registry names and owns instruments. Instrument constructors are
// idempotent: asking for the same name twice returns the same instrument
// (Histogram additionally requires the same bounds the first call set).
// The zero value is not usable; call NewRegistry. All methods tolerate a
// nil receiver by returning nil instruments, which are themselves no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter named name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge named name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram named name, creating it with the given
// ascending bucket bounds if needed. Bounds on subsequent calls are ignored.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns a point-in-time copy of every instrument. Returns the
// zero Snapshot on a nil receiver.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.histograms {
		s.Histograms[n] = h.snapshot()
	}
	return s
}

// Names returns every registered instrument name, sorted (for stable text
// encodings and tests).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ExponentialBounds returns n ascending bucket bounds starting at start and
// multiplying by factor — the standard shape for byte-valued distributions
// like CWND.
func ExponentialBounds(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	x := start
	for i := range out {
		out[i] = x
		x *= factor
	}
	return out
}

// LinearBounds returns n ascending bucket bounds start, start+step, … — the
// standard shape for bounded quantities like DCTCP's α ∈ [0,1].
func LinearBounds(start, step float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + step*float64(i)
	}
	return out
}
