package metrics_test

import (
	"fmt"

	"acdc/internal/metrics"
)

// Example shows the intended datapath pattern: resolve instruments once at
// setup, update them lock-free on the hot path, and read a consistent
// snapshot from the control plane.
func Example() {
	reg := metrics.NewRegistry()

	// Setup: resolve handles once (this takes a lock; updates do not).
	pkts := reg.Counter("ingress_segments_total")
	flows := reg.Gauge("flow_table_size")
	cwnd := reg.Histogram("cwnd_bytes", metrics.ExponentialBounds(9000, 2, 4))

	// Hot path: one atomic op per update.
	for i := 0; i < 1000; i++ {
		pkts.Inc()
	}
	flows.Set(2)
	cwnd.Observe(9000)
	cwnd.Observe(36000)

	// Control plane: snapshot and encode.
	snap := reg.Snapshot()
	fmt.Print(snap.Text())
	// Output:
	// ingress_segments_total 1000
	// flow_table_size 2
	// cwnd_bytes count=2 mean=2.25e+04 p50=9000 p99=3.564e+04
}
