package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(41)
	if v := c.Value(); v != 42 {
		t.Fatalf("Value = %d, want 42", v)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter not idempotent")
	}
}

func TestGaugeBasics(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Set(10)
	g.Add(-3)
	if v := g.Value(); v != 7 {
		t.Fatalf("Value = %d, want 7", v)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h", []float64{1, 2, 4})
	for _, x := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(x)
	}
	s := h.snapshot()
	// 0.5 and 1 land in bucket ≤1; 1.5 in ≤2; 3 in ≤4; 100 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 106 {
		t.Fatalf("count=%d sum=%g", s.Count, s.Sum)
	}
	if m := s.Mean(); m != 106.0/5 {
		t.Fatalf("mean = %g", m)
	}
	if q := s.Quantile(0.99); q != 4 {
		t.Fatalf("p99 = %g, want overflow clamp 4", q)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	h := NewRegistry().Histogram("h", []float64{10, 20})
	for i := 0; i < 10; i++ {
		h.Observe(5) // all in first bucket (0,10]
	}
	s := h.snapshot()
	if q := s.Quantile(0.5); q != 5 {
		t.Fatalf("p50 = %g, want midpoint 5", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

// TestConcurrentUpdates hammers every instrument type from many goroutines
// while snapshots run — the -race guarantee the datapath relies on.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h", []float64{0.5, 1})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.25)
				if i%1000 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("c"); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := s.Gauge("g"); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := s.Histograms["h"].Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestNilSafety: a disabled datapath holds nil instruments; every operation
// must be a cheap no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if r.Names() != nil {
		t.Fatal("nil registry Names must be nil")
	}
}

func TestSnapshotDeltaAndMerge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pkts")
	c.Add(10)
	prev := r.Snapshot()
	c.Add(5)
	d := r.Snapshot().Delta(prev)
	if d.Counter("pkts") != 5 {
		t.Fatalf("delta = %d, want 5", d.Counter("pkts"))
	}

	r2 := NewRegistry()
	r2.Counter("pkts").Add(7)
	r2.Gauge("flows").Set(3)
	r2.Histogram("h", []float64{1}).Observe(0.5)
	r3 := NewRegistry()
	r3.Histogram("h", []float64{1}).Observe(2)
	m := Merge(r.Snapshot(), r2.Snapshot(), r3.Snapshot())
	if m.Counter("pkts") != 22 {
		t.Fatalf("merged counter = %d, want 22", m.Counter("pkts"))
	}
	if m.Gauge("flows") != 3 {
		t.Fatalf("merged gauge = %d, want 3", m.Gauge("flows"))
	}
	if h := m.Histograms["h"]; h.Count != 2 || h.Counts[1] != 1 {
		t.Fatalf("merged histogram = %+v", h)
	}
}

func TestEncoders(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("flows").Set(9)
	r.Histogram("alpha", LinearBounds(0.1, 0.1, 10)).Observe(0.25)
	s := r.Snapshot()

	text := s.Text()
	if !strings.Contains(text, "a_total 1\n") || !strings.Contains(text, "flows 9\n") {
		t.Fatalf("text encoding missing lines:\n%s", text)
	}
	if strings.Index(text, "a_total") > strings.Index(text, "b_total") {
		t.Fatalf("text encoding not sorted:\n%s", text)
	}

	raw, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("b_total") != 2 || back.Histograms["alpha"].Count != 1 {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

func TestBoundsHelpers(t *testing.T) {
	e := ExponentialBounds(2, 2, 4)
	for i, w := range []float64{2, 4, 8, 16} {
		if e[i] != w {
			t.Fatalf("ExponentialBounds = %v", e)
		}
	}
	l := LinearBounds(0.1, 0.1, 3)
	for i, w := range []float64{0.1, 0.2, 0.3} {
		if diff := l[i] - w; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("LinearBounds = %v", l)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h", ExponentialBounds(4096, 2, 12))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 100000))
	}
}
