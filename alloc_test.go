package acdc

// Allocation-regression tests for the datapath hot paths. The performance
// model (ARCHITECTURE.md "Performance model") promises that steady-state
// per-segment processing — established flow, no slow-path events — performs
// zero heap allocations: packets come from the host pool, events from the
// simulator free list, and the vSwitch mutates headers in place. These tests
// pin that property so a stray fmt.Sprintf or slice literal in the hot path
// fails CI instead of quietly costing 10% throughput.

import (
	"testing"

	"acdc/internal/audit"
	"acdc/internal/benchkit"
	"acdc/internal/faults"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

// TestSenderDatapathZeroAlloc drives the Figure 11 sender-side loop
// (egress data + ingress PACK-carrying ACK) through an established flow.
// The fixture attaches no auditor, so this also pins that the nil-auditor
// branch in EgressPath/IngressPath costs zero allocations.
func TestSenderDatapathZeroAlloc(t *testing.T) {
	ob := newOverheadBench(64)
	f := 0
	// Warm the pool and the flow state once before measuring.
	round := func() {
		benchkit.BumpSeq(ob.Data[f], 1460)
		ob.V.EgressPath(ob.Data[f])
		benchkit.BumpSeq(ob.Acks[f], 0)
		ob.CloneIngress(ob.Acks[f])
		f = (f + 1) % 64
	}
	for i := 0; i < 128; i++ {
		round() // touch every flow so first-packet state is all built
	}
	if n := testing.AllocsPerRun(200, round); n != 0 {
		t.Errorf("sender steady-state datapath: %v allocs/op, want 0", n)
	}
}

// TestReceiverDatapathZeroAlloc drives the Figure 12 receiver-side loop
// (ingress data + egress ACK with in-place PACK attach).
func TestReceiverDatapathZeroAlloc(t *testing.T) {
	ob := newOverheadBench(64)
	f := 0
	round := func() {
		benchkit.BumpSeq(ob.InData[f], 1460)
		ob.V.IngressPath(ob.InData[f])
		ob.CloneEgress(ob.OutAck[f])
		f = (f + 1) % 64
	}
	for i := 0; i < 128; i++ {
		round()
	}
	if n := testing.AllocsPerRun(200, round); n != 0 {
		t.Errorf("receiver steady-state datapath: %v allocs/op, want 0", n)
	}
}

// TestAuditedDatapathZeroAlloc attaches the invariant auditor and drives the
// same sender loop: a violation-free audit must also be allocation-free —
// event structs are populated on the stack and passed by value, and the lazy
// violation counters are never touched on the clean path.
func TestAuditedDatapathZeroAlloc(t *testing.T) {
	ob := newOverheadBench(64)
	audit.Attach(ob.V, audit.Config{Panic: true}) // any violation fails loudly
	f := 0
	round := func() {
		ob.SenderRound(f)
		f = (f + 1) % 64
	}
	for i := 0; i < 128; i++ {
		round()
	}
	if n := testing.AllocsPerRun(200, round); n != 0 {
		t.Errorf("audited steady-state datapath: %v allocs/op, want 0", n)
	}
}

// TestSenderBatchDatapathZeroAlloc pins the batch entry points: a 32-packet
// burst through EgressBatch + IngressBatch must be allocation-free once the
// vSwitch batch scratch (meta/keys/flows/pair slices) has grown to burst
// size. The per-packet pins above stay as the batch-of-1 fallback guard.
func TestSenderBatchDatapathZeroAlloc(t *testing.T) {
	ob := newOverheadBench(64)
	f := 0
	round := func() {
		ob.SenderRoundBatch(f, 32)
		f = (f + 32) % 64
	}
	for i := 0; i < 128; i++ {
		round()
	}
	if n := testing.AllocsPerRun(200, round); n != 0 {
		t.Errorf("sender batch datapath: %v allocs/op, want 0", n)
	}
}

// TestReceiverBatchDatapathZeroAlloc is the receiver-side batch pin.
func TestReceiverBatchDatapathZeroAlloc(t *testing.T) {
	ob := newOverheadBench(64)
	f := 0
	round := func() {
		ob.ReceiverRoundBatch(f, 32)
		f = (f + 32) % 64
	}
	for i := 0; i < 128; i++ {
		round()
	}
	if n := testing.AllocsPerRun(200, round); n != 0 {
		t.Errorf("receiver batch datapath: %v allocs/op, want 0", n)
	}
}

// TestAuditedBatchDatapathZeroAlloc: the audited batch path brackets every
// burst element with CapturePre/PacketEvent exactly like the per-packet path,
// and a clean audit must stay allocation-free there too.
func TestAuditedBatchDatapathZeroAlloc(t *testing.T) {
	ob := newOverheadBench(64)
	audit.Attach(ob.V, audit.Config{Panic: true})
	f := 0
	round := func() {
		ob.SenderRoundBatch(f, 32)
		f = (f + 32) % 64
	}
	for i := 0; i < 128; i++ {
		round()
	}
	if n := testing.AllocsPerRun(200, round); n != 0 {
		t.Errorf("audited batch datapath: %v allocs/op, want 0", n)
	}
}

// TestPoolCloneReleaseZeroAlloc pins the pool round trip itself.
func TestPoolCloneReleaseZeroAlloc(t *testing.T) {
	pool := packet.NewPool()
	tmpl := packet.Build(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2),
		packet.NotECT, packet.TCPFields{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK, Window: 100}, 0)
	round := func() {
		q := pool.Clone(tmpl)
		pool.Put(q)
	}
	round()
	if n := testing.AllocsPerRun(500, round); n != 0 {
		t.Errorf("pool clone/release: %v allocs/op, want 0", n)
	}
	if pool.News > 1 {
		t.Errorf("pool allocated %d fresh packets for a 1-deep working set", pool.News)
	}
}

// TestStreamDatapathZeroAlloc pins the train-stream fixtures behind the batch
// scaling curve (the headline perpacket-vs-batch comparison): both consumers
// of the shared stream must be allocation-free in steady state.
func TestStreamDatapathZeroAlloc(t *testing.T) {
	obP := benchkit.NewOverheadBenchTrains(64, 8)
	for i := 0; i < 64*8*2; i++ {
		obP.SenderStreamRound() // visit every flow/train slot once
	}
	if n := testing.AllocsPerRun(200, obP.SenderStreamRound); n != 0 {
		t.Errorf("sender stream per-packet: %v allocs/op, want 0", n)
	}

	obB := benchkit.NewOverheadBenchTrains(64, 8)
	roundB := func() { obB.SenderStreamBatch(32) }
	for i := 0; i < 64; i++ {
		roundB()
	}
	if n := testing.AllocsPerRun(200, roundB); n != 0 {
		t.Errorf("sender stream batch: %v allocs/op, want 0", n)
	}

	obR := benchkit.NewOverheadBenchTrains(64, 8)
	for i := 0; i < 64*8*2; i++ {
		obR.ReceiverStreamRound()
	}
	if n := testing.AllocsPerRun(200, obR.ReceiverStreamRound); n != 0 {
		t.Errorf("receiver stream per-packet: %v allocs/op, want 0", n)
	}

	obRB := benchkit.NewOverheadBenchTrains(64, 8)
	roundRB := func() { obRB.ReceiverStreamBatch(32) }
	for i := 0; i < 64; i++ {
		roundRB()
	}
	if n := testing.AllocsPerRun(200, roundRB); n != 0 {
		t.Errorf("receiver stream batch: %v allocs/op, want 0", n)
	}
}

// TestFabricFlapLeakFree pins packet-pool and event ownership across link
// lifecycle churn, end to end: a k=4 fat-tree carrying cross-pod bulk traffic
// while an aggregation switch's spine uplinks flap continuously. Every drain
// path a flap exercises — queued packets discarded by Down(), sends refused
// while down, ECMP blackholes when a group loses every member — must return
// ownership to packet.Pool, and the down/up timer churn must recycle through
// the simulator's event free list. A leak in any of them shows up here as
// unbounded pool/event allocation growth after warm-up.
func TestFabricFlapLeakFree(t *testing.T) {
	// Both of p0-agg0's core uplinks flap together (300us down / 700us up,
	// 78 cycles from t=2ms), so pod-0 traffic repeatedly loses the whole
	// uplink group mid-burst.
	doms, err := faults.ParseDomains("flap@2ms,link=p0-agg0>*,down=300us,up=700us,count=78")
	if err != nil {
		t.Fatalf("ParseDomains: %v", err)
	}
	net := topo.FatTree(topo.FatTreeConfig{K: 4}, topo.Options{
		Guest:  tcpstack.DefaultConfig(),
		Seed:   1,
		Fabric: doms,
	})
	m := workload.NewManager(net)
	flows := make([]*workload.Messenger, 0, 8)
	for i := 0; i < 8; i++ {
		flows = append(flows, m.Open(i, (i+8)%16)) // pods 0,1 → 2,3: all cross-spine
	}
	var refill func()
	refill = func() {
		for _, f := range flows {
			f.SendBulk(512 << 10)
		}
		net.Sim.ScheduleFunc(sim.Millisecond, refill)
	}
	net.Sim.ScheduleFunc(0, refill)

	// Warm up through ~18 flap cycles: pool and event free lists reach their
	// high-water marks, flows are in steady congestion avoidance.
	net.Sim.Run(20 * sim.Millisecond)
	newsWarm, allocWarm := net.Pool.News, net.Sim.Allocated()

	// Sixty more cycles. A Down() drain that dropped pool ownership would
	// bleed the free list every cycle and force fresh allocations linearly
	// (hundreds over this window); a healthy lifecycle stays near flat.
	net.Sim.Run(60 * sim.Millisecond)
	if grew := net.Pool.News - newsWarm; grew > 200 {
		t.Errorf("pool allocated %d fresh packets across flap cycles after warm-up (leaked ownership on drain?)", grew)
	}
	if grew := net.Sim.Allocated() - allocWarm; grew > 512 {
		t.Errorf("simulator allocated %d fresh events across flap cycles after warm-up (timer leak?)", grew)
	}

	// The run must actually have exercised the drain paths, or the bounds
	// above pin nothing.
	snap := net.FabricSnapshot()
	if downs := snap.Counter("fabric_link_downs_total"); downs < 100 {
		t.Fatalf("only %d link-down events — flap plan did not run", downs)
	}
	if snap.Counter("link_drops_total{reason=down}") == 0 {
		t.Fatal("no down-drain drops: flaps never caught a busy queue, test lost its teeth")
	}
	var delivered int64
	for _, f := range flows {
		delivered += f.Delivered()
	}
	if delivered == 0 {
		t.Fatal("no traffic delivered under flaps")
	}
}
