module acdc

go 1.22
