// Command acdctrace prints an annotated packet-level trace of a small
// transfer, showing exactly what the AC/DC datapath does to each packet:
// ECT marking on egress, PACK options appearing on ACKs, ECN stripping and
// RWND rewriting on ingress. Useful for understanding the mechanism and for
// debugging datapath changes.
//
// Usage:
//
//	acdctrace [-bytes N] [-noacdc] [-max M]
package main

import (
	"flag"
	"fmt"

	"acdc/internal/core"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/workload"
)

var (
	nBytes = flag.Int64("bytes", 30_000, "bytes to transfer")
	noACDC = flag.Bool("noacdc", false, "trace without the AC/DC module")
	maxPkt = flag.Int("max", 60, "maximum packets to print")
)

func main() {
	flag.Parse()

	guest := tcpstack.DefaultConfig()
	o := topo.Options{
		Guest: guest,
		RED:   netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
	}
	if !*noACDC {
		ac := core.DefaultConfig()
		o.ACDC = &ac
	}
	net := topo.Star(2, o)

	printed := 0
	annotate := func(host int, dir string, before, after *packet.Packet) {
		if printed >= *maxPkt {
			return
		}
		printed++
		notes := ""
		if after == nil {
			notes = " [DROPPED by vSwitch]"
			after = before
		} else {
			bi, ai := before.IP(), after.IP()
			if bi.ECN() != ai.ECN() {
				notes += fmt.Sprintf(" [ECN %v→%v]", bi.ECN(), ai.ECN())
			}
			bt, at := before.TCP(), after.TCP()
			if bt.Window() != at.Window() {
				notes += fmt.Sprintf(" [RWND %d→%d]", bt.Window(), at.Window())
			}
			bp := packet.FindOption(bt.Options(), packet.OptPACK) != nil
			ap := packet.FindOption(at.Options(), packet.OptPACK) != nil
			if !bp && ap {
				d, _ := packet.ParsePACK(packet.FindOption(at.Options(), packet.OptPACK))
				notes += fmt.Sprintf(" [+PACK total=%d marked=%d]", d.TotalBytes, d.MarkedBytes)
			}
			if bp && !ap {
				notes += " [PACK stripped]"
			}
		}
		fmt.Printf("%10v  h%d %s  %v%s\n", net.Sim.Now(), host, dir, after, notes)
	}

	// Interpose around the (possibly AC/DC) hooks on both hosts. The batch
	// hooks are nilled so every packet — bursts included — funnels through
	// the per-packet wrappers below and gets traced.
	for i := range net.Hosts {
		i := i
		h := net.Hosts[i]
		innerE, innerI := h.Egress, h.Ingress
		h.EgressBatch, h.IngressBatch = nil, nil
		h.Egress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
			before := p.Clone()
			out, extra := p, (*packet.Packet)(nil)
			if innerE != nil {
				out, extra = innerE(p)
			}
			if out == nil && extra == nil {
				annotate(i, "⇧egress ", before, nil)
				return nil, nil
			}
			annotate(i, "⇧egress ", before, out)
			if extra != nil {
				fmt.Printf("%10v  h%d ⇧egress  %v [FACK generated]\n", net.Sim.Now(), i, extra)
			}
			return out, extra
		}
		h.Ingress = func(p *packet.Packet) (*packet.Packet, *packet.Packet) {
			before := p.Clone()
			out, extra := p, (*packet.Packet)(nil)
			if innerI != nil {
				out, extra = innerI(p)
			}
			if out == nil && extra == nil {
				annotate(i, "⇩ingress", before, nil)
				return nil, nil
			}
			annotate(i, "⇩ingress", before, out)
			return out, extra
		}
	}

	m := workload.NewManager(net)
	ms := m.Open(0, 1)
	done := false
	ms.SendMessage(*nBytes, func(fct sim.Duration) {
		done = true
		fmt.Printf("\n-- message of %d bytes completed in %v --\n", *nBytes, fct)
	})
	net.Sim.RunFor(sim.Second)
	if !done {
		fmt.Println("\n-- transfer incomplete (raise -bytes budget or check trace) --")
	}
	if !*noACDC {
		v := net.ACDC[0]
		fmt.Printf("\nAC/DC @h0: rewrites=%d packs-consumed=%d; @h1: packs-attached=%d\n",
			v.Stats().RwndRewrites, v.Stats().PacksConsumed, net.ACDC[1].Stats().PacksAttached)
	}
}
