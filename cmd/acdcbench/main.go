// Command acdcbench measures the repository's performance headline numbers
// and emits them as JSON (BENCH_results.json at the repo root is a checked-in
// snapshot). Three groups:
//
//   - micro: the Figure 11/12 per-segment datapath loops and the
//     metrics-enabled variant, via testing.Benchmark (ns/op, B/op, allocs/op)
//   - eval: wall-clock for the full experiment registry, sequential and
//     parallel (-workers), plus the speedup ratio
//   - baseline: the same micro numbers measured before the zero-allocation
//     rework, kept for before/after comparison in the JSON artifact
//
// Usage:
//
//	acdcbench [-o BENCH_results.json] [-workers 0] [-skip-eval]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"acdc/internal/benchkit"
	"acdc/internal/core"
	"acdc/internal/experiments"
)

// MicroResult is one testing.Benchmark measurement.
type MicroResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// EvalResult is the full-registry wall-clock comparison.
type EvalResult struct {
	Experiments       int     `json:"experiments"`
	Workers           int     `json:"workers"`
	NumCPU            int     `json:"num_cpu"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
}

// Report is the emitted document.
type Report struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	Micro       []MicroResult `json:"micro"`
	Eval        *EvalResult   `json:"eval,omitempty"`
	Baseline    []MicroResult `json:"baseline_before_zero_alloc"`
	Notes       []string      `json:"notes,omitempty"`
}

// baseline numbers measured on this container before the zero-allocation
// rework (free-list packet pool, monomorphic event heap, pair-returning
// hooks), same loops, go test -bench on the then-current tree.
var baseline = []MicroResult{
	{Name: "Fig11Sender/acdc/flows=100", NsPerOp: 988.8, BytesPerOp: 256, AllocsPerOp: 7},
	{Name: "Fig12Receiver/acdc/flows=100", NsPerOp: 642.4, BytesPerOp: 192, AllocsPerOp: 5},
	{Name: "DatapathWithMetrics/enabled/flows=100", NsPerOp: 877.4, BytesPerOp: 256, AllocsPerOp: 7},
}

func micro(name string, loop func(b *testing.B)) MicroResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		loop(b)
	})
	return MicroResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
}

func main() {
	out := flag.String("o", "BENCH_results.json", "output path (- for stdout)")
	workers := flag.Int("workers", 0, "parallel eval workers (0 = one per CPU)")
	skipEval := flag.Bool("skip-eval", false, "skip the full-registry wall-clock comparison")
	flag.Parse()

	rep := &Report{
		GeneratedBy: "cmd/acdcbench",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Baseline:    baseline,
	}

	for _, n := range []int{100, 10000} {
		n := n
		ob := benchkit.NewOverheadBench(n)
		rep.Micro = append(rep.Micro, micro(
			fmt.Sprintf("Fig11Sender/acdc/flows=%d", n),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ob.SenderRound(i % n)
				}
			}))
		ob2 := benchkit.NewOverheadBench(n)
		rep.Micro = append(rep.Micro, micro(
			fmt.Sprintf("Fig12Receiver/acdc/flows=%d", n),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ob2.ReceiverRound(i % n)
				}
			}))
	}
	obM := benchkit.NewOverheadBenchCfg(100, func(c *core.Config) { c.DisableMetrics = false })
	rep.Micro = append(rep.Micro, micro(
		"DatapathWithMetrics/enabled/flows=100",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				obM.SenderRound(i % 100)
			}
		}))

	if !*skipEval {
		cfg := experiments.RunConfig{Seed: 1}
		seqStart := time.Now()
		experiments.RunAll(experiments.Registry, cfg, 1, nil)
		seq := time.Since(seqStart).Seconds()
		w := experiments.Workers(*workers)
		parStart := time.Now()
		experiments.RunAll(experiments.Registry, cfg, w, nil)
		par := time.Since(parStart).Seconds()
		rep.Eval = &EvalResult{
			Experiments:       len(experiments.Registry),
			Workers:           w,
			NumCPU:            runtime.NumCPU(),
			SequentialSeconds: seq,
			ParallelSeconds:   par,
			Speedup:           seq / par,
		}
		if runtime.NumCPU() == 1 {
			rep.Notes = append(rep.Notes,
				"eval measured on a single-CPU host: parallel speedup is bounded at ~1x here; the worker pool needs multiple cores to show gains")
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "acdcbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "acdcbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "acdcbench: wrote %s\n", *out)
}
