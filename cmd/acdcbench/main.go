// Command acdcbench measures the repository's performance headline numbers
// and emits them as JSON (BENCH_results.json at the repo root is a checked-in
// snapshot). Three groups:
//
//   - micro: the Figure 11/12 per-segment datapath loops and the
//     metrics-enabled variant, via testing.Benchmark (ns/op, B/op, allocs/op),
//     plus the batch-size scaling curve (batch=1/8/32/128 at 10k flows,
//     normalized to ns/packet) and the 100k/1M flow-scale tiers
//   - eval: wall-clock for the full experiment registry, sequential and
//     parallel (-workers), plus the speedup ratio
//   - baseline: the same micro numbers measured before the zero-allocation
//     rework, kept for before/after comparison in the JSON artifact
//
// Usage:
//
//	acdcbench [-o BENCH_results.json] [-workers 0] [-skip-eval] [-skip-tiers]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"acdc/internal/benchkit"
	"acdc/internal/core"
	"acdc/internal/experiments"
)

// MicroResult is one testing.Benchmark measurement. For loops that process
// more than one packet per iteration (the batch and tier loops), PacketsPerOp
// records the burst size and NsPerPacket the normalized cost, so batch and
// per-packet rows compare directly.
type MicroResult struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	Iterations   int     `json:"iterations"`
	PacketsPerOp int     `json:"packets_per_op,omitempty"`
	NsPerPacket  float64 `json:"ns_per_packet,omitempty"`
}

// EvalResult is the full-registry wall-clock comparison.
type EvalResult struct {
	Experiments       int     `json:"experiments"`
	Workers           int     `json:"workers"`
	NumCPU            int     `json:"num_cpu"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
}

// Report is the emitted document.
type Report struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	Micro       []MicroResult `json:"micro"`
	Eval        *EvalResult   `json:"eval,omitempty"`
	Baseline    []MicroResult `json:"baseline_before_zero_alloc"`
	Notes       []string      `json:"notes,omitempty"`
}

// baseline numbers measured on this container before the zero-allocation
// rework (free-list packet pool, monomorphic event heap, pair-returning
// hooks), same loops, go test -bench on the then-current tree.
var baseline = []MicroResult{
	{Name: "Fig11Sender/acdc/flows=100", NsPerOp: 988.8, BytesPerOp: 256, AllocsPerOp: 7},
	{Name: "Fig12Receiver/acdc/flows=100", NsPerOp: 642.4, BytesPerOp: 192, AllocsPerOp: 5},
	{Name: "DatapathWithMetrics/enabled/flows=100", NsPerOp: 877.4, BytesPerOp: 256, AllocsPerOp: 7},
}

func micro(name string, loop func(b *testing.B)) MicroResult {
	return microPkts(name, 0, loop)
}

// microPkts runs a loop whose every iteration processes pktsPerOp packets and
// normalizes the result to ns/packet (pktsPerOp 0 leaves the batch fields
// unset: the legacy rows are one round = two packets and predate them).
func microPkts(name string, pktsPerOp int, loop func(b *testing.B)) MicroResult {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		loop(b)
	})
	m := MicroResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
	if pktsPerOp > 0 {
		m.PacketsPerOp = pktsPerOp
		m.NsPerPacket = m.NsPerOp / float64(pktsPerOp)
	}
	return m
}

func main() {
	out := flag.String("o", "BENCH_results.json", "output path (- for stdout)")
	workers := flag.Int("workers", 0, "parallel eval workers (0 = one per CPU)")
	skipEval := flag.Bool("skip-eval", false, "skip the full-registry wall-clock comparison")
	skipTiers := flag.Bool("skip-tiers", false, "skip the 100k/1M flow-scale tiers")
	flag.Parse()

	rep := &Report{
		GeneratedBy: "cmd/acdcbench",
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Baseline:    baseline,
	}

	for _, n := range []int{100, 10000} {
		n := n
		ob := benchkit.NewOverheadBench(n)
		rep.Micro = append(rep.Micro, micro(
			fmt.Sprintf("Fig11Sender/acdc/flows=%d", n),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ob.SenderRound(i % n)
				}
			}))
		ob2 := benchkit.NewOverheadBench(n)
		rep.Micro = append(rep.Micro, micro(
			fmt.Sprintf("Fig12Receiver/acdc/flows=%d", n),
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ob2.ReceiverRound(i % n)
				}
			}))
	}
	obM := benchkit.NewOverheadBenchCfg(100, func(c *core.Config) { c.DisableMetrics = false })
	rep.Micro = append(rep.Micro, micro(
		"DatapathWithMetrics/enabled/flows=100",
		func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				obM.SenderRound(i % 100)
			}
		}))

	// Batch-size scaling curve at 10k flows over train-structured traffic
	// (each flow delivers trains of 8 back-to-back segments, the shape a ring
	// drain of a cwnd burst or a GRO-coalesced receive produces). The
	// perpacket and batch=k rows consume the identical stream from the same
	// fixture, so the comparison isolates the processing API; NsPerPacket
	// makes all rows directly comparable.
	{
		const n = 10000
		const train = 8
		obS := benchkit.NewOverheadBenchTrains(n, train)
		rep.Micro = append(rep.Micro, microPkts(
			fmt.Sprintf("Fig11SenderBatch/perpacket/flows=%d", n), 2,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					obS.SenderStreamRound()
				}
			}))
		for _, k := range []int{1, 8, 32, 128} {
			k := k
			rep.Micro = append(rep.Micro, microPkts(
				fmt.Sprintf("Fig11SenderBatch/batch=%d/flows=%d", k, n), 2*k,
				func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						obS.SenderStreamBatch(k)
					}
				}))
		}
		obR := benchkit.NewOverheadBenchTrains(n, train)
		rep.Micro = append(rep.Micro, microPkts(
			fmt.Sprintf("Fig12ReceiverBatch/perpacket/flows=%d", n), 2,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					obR.ReceiverStreamRound()
				}
			}))
		for _, k := range []int{1, 8, 32, 128} {
			k := k
			rep.Micro = append(rep.Micro, microPkts(
				fmt.Sprintf("Fig12ReceiverBatch/batch=%d/flows=%d", k, n), 2*k,
				func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						obR.ReceiverStreamBatch(k)
					}
				}))
		}
	}

	// Flow-scale tiers: the sender loop against a table holding 2·n entries
	// (one per direction). 100k stresses shard fan-out; 1M proves the O(1)
	// capacity accounting and the zero-alloc property hold far beyond the
	// sizes the figure benchmarks use.
	if !*skipTiers {
		for _, n := range []int{100_000, 1_000_000} {
			n := n
			ob := benchkit.NewTierBench(n)
			rep.Micro = append(rep.Micro, microPkts(
				fmt.Sprintf("Tier/perpacket/flows=%d", n), 2,
				func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						ob.SenderRound(i % n)
					}
				}))
			rep.Micro = append(rep.Micro, microPkts(
				fmt.Sprintf("Tier/batch=32/flows=%d", n), 64,
				func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						ob.SenderRoundBatch((i*32)%n, 32)
					}
				}))
		}
	}

	rep.Notes = append(rep.Notes,
		"batch curve rows consume train-structured traffic (trains of 8 segments per flow); the perpacket and batch=k rows replay the identical stream and differ only in the processing API")

	if !*skipEval {
		cfg := experiments.RunConfig{Seed: 1}
		seqStart := time.Now()
		experiments.RunAll(experiments.Registry, cfg, 1, nil)
		seq := time.Since(seqStart).Seconds()
		w := experiments.Workers(*workers)
		parStart := time.Now()
		experiments.RunAll(experiments.Registry, cfg, w, nil)
		par := time.Since(parStart).Seconds()
		rep.Eval = &EvalResult{
			Experiments:       len(experiments.Registry),
			Workers:           w,
			NumCPU:            runtime.NumCPU(),
			SequentialSeconds: seq,
			ParallelSeconds:   par,
			Speedup:           seq / par,
		}
		if runtime.NumCPU() == 1 {
			rep.Notes = append(rep.Notes,
				"eval measured on a single-CPU host: parallel speedup is bounded at ~1x here; the worker pool needs multiple cores to show gains")
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "acdcbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "acdcbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "acdcbench: wrote %s\n", *out)
}
