// Command acdcd runs the AC/DC vSwitch fabric as a long-lived service: a
// wall-clock-paced simulation with a localhost HTTP admin API for streaming
// live policy updates, scraping metrics, checkpointing and warm-restarting
// vSwitches, and probing health. See internal/daemon for the API surface and
// ARCHITECTURE.md ("Service mode") for the threading model.
//
// Usage:
//
//	acdcd -listen 127.0.0.1:7654 -hosts 4 -scale 0.05
//	acdcd -listen 0.0.0.0:7654 -admin-token $TOKEN
//	acdcd -fabric flap@5ms,link=h0.up,down=1ms,up=10ms,count=100
//
// The daemon binds to loopback by default. A non-loopback bind is refused
// unless -admin-token is set; with a token, every mutating endpoint requires
// `Authorization: Bearer <token>` (read-only probes stay open for health
// checks and metric scrapes). With -fabric, the named fault domains are armed
// on the service topology (star link names are "h<i>.up"/"h<i>.down"; see
// `acdcd -fabric list`) and fabric counters appear in /status and /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"acdc/internal/core"
	"acdc/internal/daemon"
	"acdc/internal/faults"
	"acdc/internal/sim"
)

func main() {
	var (
		listen      = flag.String("listen", "127.0.0.1:7654", "admin API listen address (non-loopback requires -admin-token)")
		adminToken  = flag.String("admin-token", "", "bearer token required on mutating admin endpoints (empty = open, loopback only)")
		hosts       = flag.Int("hosts", 4, "star topology size")
		seed        = flag.Int64("seed", 1, "simulation seed")
		scale       = flag.Float64("scale", 0.05, "virtual seconds advanced per wall second")
		maxCatchUp  = flag.Duration("max-catchup", 50*time.Millisecond, "virtual time replayed per advance before lag is forgiven")
		tick        = flag.Duration("tick", 2*time.Millisecond, "wall interval between pacer advances")
		auditSample = flag.Int("audit-sample", 64, "audit 1-in-N packet events (state transitions always checked; <0 disables)")
		workload    = flag.Bool("workload", true, "drive continuous background bulk traffic")
		fabricSpec  = flag.String("fabric", "", "fabric fault domains armed on the service links: kind[@time],key=val,...;... (`list` for syntax)")
		backend     = flag.String("backend", "", "enforcement backend on every vSwitch (dctcp-cut, pace, adaptive-k; empty = dctcp-cut)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "acdcd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	var fabric []faults.FaultDomain
	if *fabricSpec != "" {
		if *fabricSpec == "help" || *fabricSpec == "list" {
			fmt.Print(faults.DomainHelp())
			return
		}
		ds, err := faults.ParseDomains(*fabricSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acdcd: bad -fabric %q: %v\n", *fabricSpec, err)
			os.Exit(2)
		}
		fabric = ds
	}

	if _, err := core.ParseBackend(*backend); err != nil {
		fmt.Fprintf(os.Stderr, "acdcd: bad -backend: %v\n", err)
		os.Exit(2)
	}

	if *adminToken == "" && !daemon.LoopbackAddr(*listen) {
		fmt.Fprintf(os.Stderr, "acdcd: refusing to bind the unauthenticated admin API to non-loopback %q; set -admin-token or listen on 127.0.0.1\n", *listen)
		os.Exit(2)
	}

	d := daemon.New(daemon.Config{
		Hosts:       *hosts,
		Seed:        *seed,
		Scale:       *scale,
		MaxCatchUp:  sim.Duration(*maxCatchUp),
		Tick:        *tick,
		AuditSample: *auditSample,
		Workload:    *workload,
		Fabric:      fabric,
		Backend:     *backend,
		AdminToken:  *adminToken,
	})
	d.Start()

	srv := &http.Server{Addr: *listen, Handler: d.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	auth := "open (loopback only)"
	if *adminToken != "" {
		auth = "bearer token on mutating endpoints"
	}
	log.Printf("acdcd: serving admin API on http://%s (hosts=%d scale=%g seed=%d, auth: %s)",
		*listen, *hosts, *scale, *seed, auth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("acdcd: %v, shutting down", sig)
	case err := <-errc:
		log.Printf("acdcd: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	d.Stop()
	st := d.StatusNow()
	log.Printf("acdcd: stopped at virtual %s (%d policy updates, %d restarts, degraded=%q)",
		st.SimNow, st.PolicyUpdates, st.Restarts, st.Degraded)
}
