// Command acdcsim runs the paper-reproduction experiments.
//
// Usage:
//
//	acdcsim -list              list experiment IDs
//	acdcsim fig8 table1 …      run selected experiments
//	acdcsim -all               run the whole registry
//	acdcsim -long fig14        closer-to-paper durations (~10×)
//	acdcsim -seed 7 fig1       change the simulation seed
//	acdcsim -parallel 0 -all   run experiments on one worker per CPU
//	acdcsim -faults loss fig8  inject a named fault profile (chaos run)
//	acdcsim -faults drop=0.01,jitter=50us fig8
//	acdcsim -restart warm@1ms fig8       restart every vSwitch mid-run
//	acdcsim -restart stale@1ms,age=500us,down=50us fig8
//	acdcsim -fabric link-down@5ms,link=left>right,for=1ms fig8
//	acdcsim -audit fig8        check datapath invariants, log violations
//	acdcsim -audit-panic fig8  ...or abort on the first violation
//
// -parallel N runs the selected experiments over N workers (0 = one per
// CPU; the default 1 is the sequential path). Each experiment owns its own
// simulator, so results and their printed order are identical to a
// sequential run — only wall time changes.
//
// Run `acdcsim -faults list` to list the built-in profiles,
// `acdcsim -restart list` to list the restart variants, and
// `acdcsim -fabric list` for the fabric fault-domain syntax. Fabric plans
// address links by topology-specific names (the dumbbell trunk is
// "left>right"); a plan matching zero links aborts the run rather than
// silently reporting a clean fabric.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"acdc/internal/audit"
	"acdc/internal/core"
	"acdc/internal/experiments"
	"acdc/internal/faults"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	all := flag.Bool("all", false, "run every experiment")
	long := flag.Bool("long", false, "run closer-to-paper durations (~10x)")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 1, "experiment workers (0 = one per CPU, 1 = sequential)")
	faultSpec := flag.String("faults", "", "fault profile: a built-in name or k=v list (`list` to enumerate)")
	restartSpec := flag.String("restart", "", "vSwitch restart plan: mode[@time][,key=val...] (`list` to enumerate)")
	fabricSpec := flag.String("fabric", "", "fabric fault domains: kind[@time],key=val,...;... (`list` for syntax)")
	auditOn := flag.Bool("audit", false, "attach the datapath invariant auditor to every AC/DC vSwitch (violations logged to stderr)")
	auditPanic := flag.Bool("audit-panic", false, "like -audit, but the first violation aborts the run")
	backend := flag.String("backend", "", "enforcement backend on every AC/DC vSwitch (dctcp-cut, pace, adaptive-k; empty = dctcp-cut)")
	flag.Parse()

	if _, err := core.ParseBackend(*backend); err != nil {
		fmt.Fprintf(os.Stderr, "acdcsim: bad -backend: %v\n", err)
		os.Exit(2)
	}

	var prof *faults.Profile
	if *faultSpec != "" {
		if *faultSpec == "help" || *faultSpec == "list" {
			fmt.Print(faults.ProfilesHelp())
			return
		}
		p, err := faults.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acdcsim: bad -faults %q: %v\n", *faultSpec, err)
			os.Exit(2)
		}
		prof = &p
	}

	var restart *faults.RestartPlan
	if *restartSpec != "" {
		if *restartSpec == "help" || *restartSpec == "list" {
			fmt.Print(faults.RestartHelp())
			return
		}
		p, err := faults.ParseRestart(*restartSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acdcsim: bad -restart %q: %v\n", *restartSpec, err)
			os.Exit(2)
		}
		restart = &p
	}

	var fabric []faults.FaultDomain
	if *fabricSpec != "" {
		if *fabricSpec == "help" || *fabricSpec == "list" {
			fmt.Print(faults.DomainHelp())
			return
		}
		ds, err := faults.ParseDomains(*fabricSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acdcsim: bad -fabric %q: %v\n", *fabricSpec, err)
			os.Exit(2)
		}
		fabric = ds
	}

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if *all {
		ids = nil
		for _, e := range experiments.Registry {
			ids = append(ids, e.ID)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: acdcsim [-long] [-seed N] [-faults P] [-restart R] [-fabric D] [-audit] (-list | -all | <experiment-id>...)")
		fmt.Fprintln(os.Stderr, "run `acdcsim -list` for available experiments")
		os.Exit(2)
	}

	var auditCfg *audit.Config
	if *auditOn || *auditPanic {
		auditCfg = &audit.Config{Panic: *auditPanic}
	}

	cfg := experiments.RunConfig{Long: *long, Seed: *seed, Faults: prof, Restart: restart, Audit: auditCfg, Fabric: fabric, Backend: *backend}
	if prof != nil && prof.Enabled() {
		// Announce chaos runs up front (and only then, so fault-free output
		// is byte-identical to a build without the flag).
		fmt.Printf("fault injection: %s (seed %d) on %s\n\n",
			prof.String(), *seed, strings.Join(ids, " "))
	}
	if restart != nil {
		fmt.Printf("vSwitch restart: %s on %s\n\n", restart.String(), strings.Join(ids, " "))
	}
	if *backend != "" {
		// Announced only when set, so default-backend output stays
		// byte-identical to a build without the flag.
		fmt.Printf("enforcement backend: %s on %s\n\n", *backend, strings.Join(ids, " "))
	}
	if len(fabric) > 0 {
		plans := make([]string, len(fabric))
		for i, d := range fabric {
			plans[i] = d.String()
		}
		fmt.Printf("fabric fault domains: %s (seed %d) on %s\n\n",
			strings.Join(plans, ";"), *seed, strings.Join(ids, " "))
	}
	if auditCfg != nil {
		mode := "log"
		if auditCfg.Panic {
			mode = "panic"
		}
		fmt.Printf("invariant audit: enabled (%s mode) on %s\n\n", mode, strings.Join(ids, " "))
	}
	exit := 0
	var jobs []experiments.Job
	for _, id := range ids {
		e := experiments.ByID(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			exit = 1
			continue
		}
		jobs = append(jobs, experiments.Job{Exp: *e, Cfg: cfg})
	}
	// Wrap each run with per-experiment timing; results stream out strictly
	// in job order, so parallel output matches sequential output (modulo the
	// wall-time lines, which also vary run to run sequentially).
	durs := make([]time.Duration, len(jobs))
	for i := range jobs {
		i, run := i, jobs[i].Exp.Run
		jobs[i].Exp.Run = func(c experiments.RunConfig) *experiments.Result {
			start := time.Now()
			res := run(c)
			durs[i] = time.Since(start)
			return res
		}
	}
	experiments.Sweep(jobs, *parallel, func(i int, res *experiments.Result) {
		fmt.Print(res.String())
		fmt.Printf("(wall time %.1fs)\n\n", durs[i].Seconds())
	})
	os.Exit(exit)
}
