// Command acdcsim runs the paper-reproduction experiments.
//
// Usage:
//
//	acdcsim -list              list experiment IDs
//	acdcsim fig8 table1 …      run selected experiments
//	acdcsim -all               run the whole registry
//	acdcsim -long fig14        closer-to-paper durations (~10×)
//	acdcsim -seed 7 fig1       change the simulation seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"acdc/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	all := flag.Bool("all", false, "run every experiment")
	long := flag.Bool("long", false, "run closer-to-paper durations (~10x)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if *all {
		ids = nil
		for _, e := range experiments.Registry {
			ids = append(ids, e.ID)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: acdcsim [-long] [-seed N] (-list | -all | <experiment-id>...)")
		fmt.Fprintln(os.Stderr, "run `acdcsim -list` for available experiments")
		os.Exit(2)
	}

	cfg := experiments.RunConfig{Long: *long, Seed: *seed}
	exit := 0
	for _, id := range ids {
		e := experiments.ByID(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			exit = 1
			continue
		}
		start := time.Now()
		res := e.Run(cfg)
		fmt.Print(res.String())
		fmt.Printf("(wall time %.1fs)\n\n", time.Since(start).Seconds())
	}
	os.Exit(exit)
}
