// Command acdcsuite runs the declarative scenario catalog and gates the
// results against checked-in baselines — the repo's regression trajectory.
//
// Usage:
//
//	acdcsuite                          run the whole catalog, diff baselines
//	acdcsuite baseline lossy-link      run selected scenarios only
//	acdcsuite -scenario list           list the catalog (also: acdcsuite list)
//	acdcsuite -smoke                   reduced CI shape (small topologies, 1 trial)
//	acdcsuite -bless                   record current results as the new baselines
//	acdcsuite -config specs.json       run scenarios from a JSON spec file
//	acdcsuite -baseline FILE           baseline file (default SUITE_baselines.json)
//	acdcsuite -seed 1 -parallel 0      base seed / worker count
//	acdcsuite -faults list             fault-profile syntax for spec Faults fields
//	acdcsuite -restart list            restart-plan syntax for spec Restart fields
//	acdcsuite -fabric list             fault-domain syntax for spec Fabric fields
//
// Exit status: 0 when every expected-invariant check passes and every metric
// is inside its baseline tolerance band; 1 on any check failure, baseline
// regression, missing baseline entry, or (full-catalog runs) stale baseline
// entry; 2 on usage errors. The simulator is deterministic, so rerunning an
// unchanged tree reproduces the blessed values exactly — any diff is a real
// behaviour change.
//
// Scenario runs are isolated per-simulator and spread over -parallel workers
// via experiments.Sweep; output and results are byte-identical to a
// sequential run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"acdc/internal/core"
	"acdc/internal/faults"
	"acdc/internal/scenario"
	"acdc/internal/soak"
)

func main() {
	scenarioFlag := flag.String("scenario", "", "comma-separated scenario names (`list` to enumerate; default: whole catalog)")
	config := flag.String("config", "", "JSON spec file to run instead of the built-in catalog")
	baseline := flag.String("baseline", "SUITE_baselines.json", "baseline file to diff against / bless into")
	bless := flag.Bool("bless", false, "record this run's results as the new baselines instead of diffing")
	smoke := flag.Bool("smoke", false, "reduced CI shape: smoke topology overrides, 1 trial, separate baseline mode")
	noBaseline := flag.Bool("no-baseline", false, "skip the baseline diff (checks still run)")
	seed := flag.Int64("seed", 1, "base simulation seed (trial t runs at seed+t)")
	parallel := flag.Int("parallel", 0, "scenario workers (0 = one per CPU, 1 = sequential)")
	quiet := flag.Bool("quiet", false, "suppress progress and per-scenario metric lines (failures still print)")
	faultSpec := flag.String("faults", "", "`list` shows the fault-profile syntax scenario specs use in their Faults field")
	restartSpec := flag.String("restart", "", "`list` shows the restart-plan syntax scenario specs use in their Restart field")
	fabricSpec := flag.String("fabric", "", "`list` shows the fault-domain syntax scenario specs use in their Fabric field")
	soakMode := flag.Bool("soak", false, "run the service-mode soak (leak/drift gates) instead of the scenario catalog")
	soakDuration := flag.Duration("soak-duration", 60*time.Second, "wall-clock soak length (with -soak)")
	backend := flag.String("backend", "", "enforcement backend override for every scenario (dctcp-cut, pace, adaptive-k; empty = spec/default); pair non-default runs with -no-baseline")
	flag.Parse()

	if _, err := core.ParseBackend(*backend); err != nil {
		fail(2, "acdcsuite: bad -backend: %v", err)
	}

	if *soakMode {
		runSoak(*soakDuration, *seed, *quiet)
		return
	}

	// Shared plan-style flag convention: `list` enumerates. Scenario fault and
	// restart plans live inside the spec, so here the flags are help-only.
	if *faultSpec != "" {
		if *faultSpec == "help" || *faultSpec == "list" {
			fmt.Print(faults.ProfilesHelp())
			return
		}
		fail(2, "acdcsuite: fault plans belong in the scenario spec's Faults field (use -faults list for syntax)")
	}
	if *restartSpec != "" {
		if *restartSpec == "help" || *restartSpec == "list" {
			fmt.Print(faults.RestartHelp())
			return
		}
		fail(2, "acdcsuite: restart plans belong in the scenario spec's Restart field (use -restart list for syntax)")
	}
	if *fabricSpec != "" {
		if *fabricSpec == "help" || *fabricSpec == "list" {
			fmt.Print(faults.DomainHelp())
			return
		}
		fail(2, "acdcsuite: fabric plans belong in the scenario spec's Fabric field (use -fabric list for syntax)")
	}

	names := flag.Args()
	if *scenarioFlag != "" {
		for _, n := range strings.Split(*scenarioFlag, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}
	// `list`/`help` is a catalog query only when it is the entire selection.
	// Mixed with real names it used to short-circuit here, so a typo like
	// `-scenario baselin,list` printed the catalog and exited 0 instead of
	// failing; now the unknown name reaches CatalogByName and errors with a
	// near-miss suggestion.
	if len(names) == 1 && (names[0] == "list" || names[0] == "help") {
		fmt.Print(scenario.CatalogHelp())
		return
	}

	var specs []scenario.Spec
	var err error
	if *config != "" {
		if len(names) > 0 {
			fail(2, "acdcsuite: -config and scenario names are mutually exclusive")
		}
		specs, err = scenario.LoadSpecs(*config)
	} else {
		specs, err = scenario.CatalogByName(names...)
	}
	if err != nil {
		fail(2, "acdcsuite: %v", err)
	}
	// Stale-baseline detection only makes sense when the run covers the whole
	// gated set: the built-in catalog with no selection.
	complete := *config == "" && len(names) == 0

	cfg := scenario.SuiteConfig{Seed: *seed, Smoke: *smoke, Workers: *parallel, Backend: *backend}
	if !*quiet {
		cfg.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	fmt.Printf("acdcsuite: %d scenario(s), mode %s, seed %d\n", len(specs), cfg.Mode(), *seed)
	if *backend != "" {
		// Announced only when overridden, so default runs stay byte-identical.
		fmt.Printf("enforcement backend: %s (baselines are blessed for the default; use -no-baseline)\n", *backend)
	}
	start := time.Now()
	results, err := scenario.Run(specs, cfg)
	if err != nil {
		fail(2, "acdcsuite: %v", err)
	}

	exit := 0
	for _, r := range results {
		if !*quiet {
			fmt.Printf("\n== %s — %s\n", r.Spec.Name, r.Spec.Title)
		}
		for _, sr := range r.Schemes {
			if !*quiet {
				fmt.Printf("   %-6s %s\n", sr.Scheme, summarize(sr.Metrics))
			}
			for _, f := range sr.CheckFailures {
				// The failure text already names the scheme.
				fmt.Printf("   CHECK FAILED %s: %s\n", r.Spec.Name, f)
				exit = 1
			}
		}
	}
	fmt.Printf("\n(wall time %.1fs)\n", time.Since(start).Seconds())

	switch {
	case *noBaseline:
	case *bless:
		f, lerr := scenario.LoadBaselines(*baseline)
		if lerr != nil {
			f = &scenario.BaselineFile{Comment: "regenerate: go run ./cmd/acdcsuite -bless (and -smoke -bless); see SCENARIOS.md"}
		}
		f.Bless(cfg.Mode(), *seed, results)
		if err := scenario.SaveBaselines(*baseline, f); err != nil {
			fail(2, "acdcsuite: %v", err)
		}
		fmt.Printf("blessed %d scenario(s) into %s (mode %s)\n", len(results), *baseline, cfg.Mode())
	default:
		f, lerr := scenario.LoadBaselines(*baseline)
		if lerr != nil {
			fail(1, "acdcsuite: %v (run with -bless to create baselines)", lerr)
		}
		regs := f.Diff(cfg.Mode(), *seed, results, complete)
		if len(regs) > 0 {
			fmt.Printf("\nBASELINE REGRESSIONS (%d, mode %s, %s):\n", len(regs), cfg.Mode(), *baseline)
			for _, reg := range regs {
				fmt.Printf("  %s\n", reg.String())
			}
			fmt.Println("\nif this change is intended, re-bless: go run ./cmd/acdcsuite -bless (see SCENARIOS.md)")
			exit = 1
		} else {
			fmt.Printf("baselines clean (mode %s, %s)\n", cfg.Mode(), *baseline)
		}
	}
	os.Exit(exit)
}

// runSoak executes the service-mode soak (internal/soak): churn + flash-crowd
// workloads under a hostile control plane, gated on leaks, drift, goroutine
// growth, and audit violations. Exit 1 when any gate trips.
func runSoak(duration time.Duration, seed int64, quiet bool) {
	cfg := soak.Config{Duration: duration, Seed: seed}
	if !quiet {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}
	fmt.Printf("acdcsuite: soak %v, seed %d\n", duration, seed)
	r := soak.Run(cfg)
	fmt.Print(r.String())
	if r.Failed() {
		os.Exit(1)
	}
}

// summarize renders the headline metrics on one stable-order line.
func summarize(m map[string]float64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		// The ctr_ fleet counters are baselined but too noisy for the console
		// line; audit_violations is the exception worth surfacing.
		if !strings.HasPrefix(k, "ctr_") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%.4g", k, m[k]))
	}
	return strings.Join(parts, " ")
}

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
