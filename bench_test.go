package acdc

// One benchmark per table and figure in the paper's evaluation (§5), plus
// the Figure 11/12 datapath-overhead microbenchmarks and the ablation
// benches called out in DESIGN.md §5. Simulation benches run a shortened
// version of the corresponding experiment per iteration and report the
// headline quantity via b.ReportMetric, so `go test -bench=.` regenerates
// the whole evaluation; `cmd/acdcsim` produces the full tables.

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"acdc/internal/benchkit"
	"acdc/internal/core"
	"acdc/internal/experiments"
	"acdc/internal/netsim"
	"acdc/internal/packet"
	"acdc/internal/sim"
	"acdc/internal/stats"
	"acdc/internal/tcpstack"
	"acdc/internal/topo"
	"acdc/internal/udp"
	"acdc/internal/workload"
)

// quick runs one experiment per outer iteration and reports chosen metrics.
func quickExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		last = e.Run(experiments.RunConfig{Seed: int64(i + 1)})
	}
	for _, m := range metrics {
		b.ReportMetric(last.Metrics[m], m)
	}
}

func BenchmarkFig01Unfairness(b *testing.B) {
	quickExperiment(b, "fig1", "mixed_fairness", "cubic_fairness")
}

func BenchmarkFig02BufferFill(b *testing.B) {
	quickExperiment(b, "fig2", "CUBIC_p50_ms", "DCTCP_p50_ms")
}

func BenchmarkFig06RwndClamp(b *testing.B) {
	quickExperiment(b, "fig6", "max_rel_diff_mtu9000")
}

func BenchmarkFig08Dumbbell(b *testing.B) {
	quickExperiment(b, "fig8",
		"cubic_rtt_p50_ms", "dctcp_rtt_p50_ms", "acdc_rtt_p50_ms", "acdc_avg_gbps")
}

func BenchmarkParkingLot(b *testing.B) {
	quickExperiment(b, "parkinglot", "acdc_fairness", "cubic_fairness")
}

func BenchmarkFig09Tracking(b *testing.B) {
	quickExperiment(b, "fig9", "tracking_rel_err_p50")
}

func BenchmarkFig10Limiter(b *testing.B) {
	quickExperiment(b, "fig10", "frac_rwnd_limiting")
}

func BenchmarkFig13QoS(b *testing.B) {
	quickExperiment(b, "fig13", "combo5_f1_gbps", "combo5_f5_gbps")
}

func BenchmarkFig14Convergence(b *testing.B) {
	quickExperiment(b, "fig14", "acdc_fairness_5flows", "cubic_fairness_5flows")
}

func BenchmarkFig15EcnCoexist(b *testing.B) {
	quickExperiment(b, "fig15", "native_cubic_gbps", "acdc_cubic_gbps")
}

func BenchmarkFig17MixedFairness(b *testing.B) {
	quickExperiment(b, "fig17", "acdc_mixed_fairness", "dctcp_fairness")
}

func BenchmarkFig18Incast(b *testing.B) {
	quickExperiment(b, "fig18",
		"cubic_47_rtt_p50_ms", "dctcp_47_rtt_p50_ms", "acdc_47_rtt_p50_ms")
}

func BenchmarkFig20Congested(b *testing.B) {
	quickExperiment(b, "fig20", "cubic_rtt_p999_ms", "acdc_rtt_p999_ms")
}

func BenchmarkFig21Stride(b *testing.B) {
	quickExperiment(b, "fig21", "cubic_mice_p50_ms", "acdc_mice_p50_ms")
}

func BenchmarkFig22Shuffle(b *testing.B) {
	quickExperiment(b, "fig22", "cubic_mice_p999_ms", "acdc_mice_p999_ms")
}

func BenchmarkFig23Traces(b *testing.B) {
	quickExperiment(b, "fig23",
		"web-search_cubic_mice_p50_ms", "web-search_acdc_mice_p50_ms")
}

func BenchmarkTable1Variants(b *testing.B) {
	quickExperiment(b, "table1",
		"cubics_mtu9000_rtt_p50_us", "dctcps_mtu9000_rtt_p50_us", "cubic_mtu9000_rtt_p50_us")
}

// --- Figures 11 & 12: datapath computational overhead ---
//
// The paper measures whole-system CPU with sar and reports < 1 percentage
// point of overhead. Here we measure the per-segment cost of the AC/DC
// datapath directly, against a baseline that parses headers the way any
// vSwitch must, across flow-table populations from 100 to 10,000. The
// fixture lives in internal/benchkit so cmd/acdcbench reports exactly the
// same loops.

func newOverheadBench(nFlows int) *benchkit.OverheadBench {
	return benchkit.NewOverheadBench(nFlows)
}

var overheadSizes = []int{100, 500, 1000, 5000, 10000}

func BenchmarkFig11SenderOverhead(b *testing.B) {
	for _, n := range overheadSizes {
		ob := newOverheadBench(n)
		b.Run(fmt.Sprintf("acdc/flows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := i % n
				benchkit.BumpSeq(ob.Data[f], 1460)
				ob.V.EgressPath(ob.Data[f])
				benchkit.BumpSeq(ob.Acks[f], 0)
				ob.CloneIngress(ob.Acks[f])
			}
		})
		b.Run(fmt.Sprintf("baseline/flows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := i % n
				benchkit.BumpSeq(ob.Data[f], 1460)
				benchkit.BaselineForward(ob.Data[f])
				q := ob.Pool.Clone(ob.Acks[f])
				benchkit.BaselineForward(q)
				ob.Pool.Put(q)
			}
		})
	}
}

func BenchmarkFig12ReceiverOverhead(b *testing.B) {
	for _, n := range overheadSizes {
		ob := newOverheadBench(n)
		b.Run(fmt.Sprintf("acdc/flows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := i % n
				benchkit.BumpSeq(ob.InData[f], 1460)
				ob.V.IngressPath(ob.InData[f])
				ob.CloneEgress(ob.OutAck[f])
			}
		})
		b.Run(fmt.Sprintf("baseline/flows=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				f := i % n
				benchkit.BumpSeq(ob.InData[f], 1460)
				benchkit.BaselineForward(ob.InData[f])
				q := ob.Pool.Clone(ob.OutAck[f])
				benchkit.BaselineForward(q)
				ob.Pool.Put(q)
			}
		})
	}
}

// batchSizes is the batch-size scaling curve: batch=1 exercises the
// per-packet fallback inside the batch entry points; 8/32/128 show how much
// of the per-packet cost (lookups, shard locks, metric increments) the batch
// path amortizes.
var batchSizes = []int{1, 8, 32, 128}

// batchTrain is the per-flow train length of the batch benchmark stream: a
// burst handed to the datapath is consecutive segments of the same flow in
// trains of 8 (the shape a ring drain of a sender's cwnd burst or a
// GRO-coalesced receive produces), cycling through all 10k flows. The
// perpacket subbenchmark consumes the identical stream one packet at a time,
// so the two differ only in the processing API.
const batchTrain = 8

// BenchmarkFig11SenderBatch is the Figure 11 sender-side loop through
// EgressBatch/IngressBatch at 10k flows, across the batch-size curve. Each
// batch=k iteration processes 2·k packets (k data segments out, k
// PACK-carrying ACKs in); divide ns/op by 2·k for ns/packet and compare
// against the perpacket subbenchmark (2 packets per iteration).
func BenchmarkFig11SenderBatch(b *testing.B) {
	const n = 10000
	ob := benchkit.NewOverheadBenchTrains(n, batchTrain)
	b.Run(fmt.Sprintf("perpacket/flows=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ob.SenderStreamRound()
		}
	})
	for _, k := range batchSizes {
		b.Run(fmt.Sprintf("batch=%d/flows=%d", k, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ob.SenderStreamBatch(k)
			}
		})
	}
}

// BenchmarkFig12ReceiverBatch is the receiver-side counterpart.
func BenchmarkFig12ReceiverBatch(b *testing.B) {
	const n = 10000
	ob := benchkit.NewOverheadBenchTrains(n, batchTrain)
	b.Run(fmt.Sprintf("perpacket/flows=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ob.ReceiverStreamRound()
		}
	})
	for _, k := range batchSizes {
		b.Run(fmt.Sprintf("batch=%d/flows=%d", k, n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ob.ReceiverStreamBatch(k)
			}
		})
	}
}

// BenchmarkTier100kBatch is the 100k-flow tier: sender-side rounds through a
// table holding 200k entries (two directions per flow), per-packet vs
// batch=32. The 1M tier lives in cmd/acdcbench (too slow to set up per `go
// test` run); this one doubles as the CI batching-regression smoke.
func BenchmarkTier100kBatch(b *testing.B) {
	const n = 100_000
	ob := benchkit.NewTierBench(n)
	b.Run("perpacket", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ob.SenderRound(i % n)
		}
	})
	b.Run("batch=32", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ob.SenderRoundBatch((i*32)%n, 32)
		}
	})
}

// BenchmarkDatapathWithMetrics isolates the cost of the observability layer:
// the Figure 11 sender-side loop with the metrics registry enabled (the
// default) versus DisableMetrics (every instrument nil, updates compile to a
// predicted branch). The enabled/disabled delta is the metrics overhead and
// must stay under 5% of the per-segment datapath cost.
func BenchmarkDatapathWithMetrics(b *testing.B) {
	for _, n := range []int{100, 10000} {
		for _, mode := range []struct {
			name    string
			disable bool
		}{{"enabled", false}, {"disabled", true}} {
			ob := benchkit.NewOverheadBenchCfg(n, func(c *core.Config) { c.DisableMetrics = mode.disable })
			b.Run(fmt.Sprintf("%s/flows=%d", mode.name, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					f := i % n
					benchkit.BumpSeq(ob.Data[f], 1460)
					ob.V.EgressPath(ob.Data[f])
					benchkit.BumpSeq(ob.Acks[f], 0)
					ob.CloneIngress(ob.Acks[f])
				}
			})
		}
	}
}

// BenchmarkFig11Concurrent drives the sender-side datapath from multiple
// goroutines, the way OVS processes multiple NIC queues, exercising the
// sharded flow table.
func BenchmarkFig11Concurrent(b *testing.B) {
	ob := newOverheadBench(10000)
	// The packet pool is single-threaded by design; detach it so concurrent
	// clones fall back to plain (thread-safe) allocation.
	ob.V.Host.Pool = nil
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			f := (i * 7) % 10000
			ob.V.IngressPath(ob.Acks[f].Clone())
		}
	})
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationPACKvsFACK compares feedback piggybacking against
// dedicated feedback packets: FACK-only doubles the ACK-path packet count
// but keeps the congestion-control behaviour (queue, throughput) intact.
func BenchmarkAblationPACKvsFACK(b *testing.B) {
	run := func(disablePACK bool) (gbps float64, extraPkts float64) {
		scheme := experiments.SchemeACDC(9000, "cubic", tcpstack.ECNOff)
		scheme.ACDC.DisablePACK = disablePACK
		net := topo.Star(3, topo.Options{Guest: scheme.Guest, ACDC: scheme.ACDC, RED: scheme.RED, Seed: 1})
		m := workload.NewManager(net)
		f1 := workload.Bulk(m, 0, 2)
		f2 := workload.Bulk(m, 1, 2)
		net.Sim.RunFor(80 * sim.Millisecond)
		gb := float64(f1.Delivered()+f2.Delivered()) * 8 / net.Sim.Now().Seconds() / 1e9
		return gb, float64(net.ACDC[2].Stats().FacksSent)
	}
	for i := 0; i < b.N; i++ {
		gPack, _ := run(false)
		gFack, facks := run(true)
		b.ReportMetric(gPack, "pack_gbps")
		b.ReportMetric(gFack, "fack_gbps")
		b.ReportMetric(facks, "facks_sent")
	}
}

// BenchmarkAblationCutGuard removes the once-per-window cut guard: every
// marked ACK then shrinks the window multiplicatively. At datacenter RTTs
// throughput barely moves (the shorter queue re-clocks ACKs just as fast);
// the guard's role is keeping the operating queue at DCTCP's intended
// K-proportional point instead of pinned at the window floor.
func BenchmarkAblationCutGuard(b *testing.B) {
	run := func(cutEveryAck bool) float64 {
		scheme := experiments.SchemeACDC(9000, "cubic", tcpstack.ECNOff)
		scheme.ACDC.CutEveryAck = cutEveryAck
		net := topo.Star(3, topo.Options{Guest: scheme.Guest, ACDC: scheme.ACDC, RED: scheme.RED, Seed: 1})
		m := workload.NewManager(net)
		f1 := workload.Bulk(m, 0, 2)
		f2 := workload.Bulk(m, 1, 2)
		net.Sim.RunFor(80 * sim.Millisecond)
		return float64(f1.Delivered()+f2.Delivered()) * 8 / net.Sim.Now().Seconds() / 1e9
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(false), "guarded_gbps")
		b.ReportMetric(run(true), "unguarded_gbps")
	}
}

// BenchmarkAblationPolicing measures what a non-conforming (RWND-ignoring)
// guest does to the bottleneck queue with and without policing.
func BenchmarkAblationPolicing(b *testing.B) {
	run := func(police bool) (maxQ float64) {
		scheme := experiments.SchemeACDC(9000, "cubic", tcpstack.ECNOff)
		scheme.Guest.IgnoreRwnd = true
		scheme.ACDC.Police = police
		net := topo.Star(3, topo.Options{Guest: scheme.Guest, ACDC: scheme.ACDC, RED: scheme.RED, Seed: 1})
		m := workload.NewManager(net)
		workload.Bulk(m, 0, 2)
		workload.Bulk(m, 1, 2)
		net.Sim.RunFor(80 * sim.Millisecond)
		return float64(net.Switches[0].Port(2).Stats.MaxQueueBytes)
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(true)/1024, "policed_maxq_kb")
		b.ReportMetric(run(false)/1024, "unpoliced_maxq_kb")
	}
}

// BenchmarkAblationChecksum compares incremental RWND-rewrite checksum
// updates against full header recomputation — the fast-path trick §4 relies
// on.
func BenchmarkAblationChecksum(b *testing.B) {
	p := packet.Build(packet.MakeAddr(10, 0, 0, 1), packet.MakeAddr(10, 0, 0, 2),
		packet.NotECT, packet.TCPFields{SrcPort: 1, DstPort: 2, Flags: packet.FlagACK, Window: 65535}, 0)
	ip := p.IP()
	ps := ip.PseudoHeaderSum(ip.TotalLen() - uint16(ip.HeaderLen()))
	t := ip.TCP()
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t.SetWindow(uint16(i))
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			binary.BigEndian.PutUint16(p.Buf[packet.IPv4HeaderLen+14:], uint16(i))
			t.ComputeChecksum(ps)
		}
	})
}

// BenchmarkAblationFlowTable compares the sharded flow table against a
// single-mutex map under parallel lookups (why §4 uses RCU/sharding).
func BenchmarkAblationFlowTable(b *testing.B) {
	keys := make([]core.FlowKey, 10000)
	for i := range keys {
		keys[i] = core.FlowKey{Src: packet.Addr(i), Dst: packet.Addr(i + 1),
			SPort: uint16(i), DPort: 80}
	}
	b.Run("sharded", func(b *testing.B) {
		b.SetParallelism(16) // OVS serves many NIC queues; oversubscribe cores
		tb := core.NewTable()
		for _, k := range keys {
			k := k
			tb.GetOrCreate(k, func() *core.Flow { return &core.Flow{Key: k} })
		}
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				tb.Get(keys[i%len(keys)])
				i++
			}
		})
	})
	b.Run("global-mutex", func(b *testing.B) {
		b.SetParallelism(16)
		var mu sync.Mutex
		mp := make(map[core.FlowKey]*core.Flow, len(keys))
		for _, k := range keys {
			mp[k] = &core.Flow{Key: k}
		}
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				mu.Lock()
				_ = mp[keys[i%len(keys)]]
				mu.Unlock()
				i++
			}
		})
	})
}

// BenchmarkAblationRwndFloor sweeps the enforcement floor in deep incast:
// byte-granularity floors below host DCTCP's 2-packet bound are what keep
// AC/DC's incast RTT low (§5.2).
func BenchmarkAblationRwndFloor(b *testing.B) {
	floors := []int64{4480, 8960, 17920} // ½, 1, 2 MSS
	for _, fl := range floors {
		fl := fl
		b.Run(fmt.Sprintf("floor=%dB", fl), func(b *testing.B) {
			var rtt float64
			for i := 0; i < b.N; i++ {
				scheme := experiments.SchemeACDC(9000, "cubic", tcpstack.ECNOff)
				scheme.ACDC.MinRwndBytes = fl
				net := topo.Star(34, topo.Options{Guest: scheme.Guest, ACDC: scheme.ACDC, RED: scheme.RED, Seed: 1})
				m := workload.NewManager(net)
				senders := make([]int, 32)
				for j := range senders {
					senders[j] = j
				}
				p := workload.NewProber(m, 33, 32)
				workload.Incast(m, senders, 32)
				net.Sim.RunFor(60 * sim.Millisecond)
				p.Start()
				net.Sim.RunFor(60 * sim.Millisecond)
				p.Stop()
				rtt = p.Samples.Percentile(50) / 1e6
			}
			b.ReportMetric(rtt, "rtt_p50_ms")
		})
	}
}

// Sanity: the overhead bench fixture produces live state.
func TestOverheadBenchFixture(t *testing.T) {
	ob := newOverheadBench(100)
	if ob.V.Table.Len() < 200 { // two directions per flow
		t.Fatalf("fixture table has %d entries", ob.V.Table.Len())
	}
	out := ob.V.Ingress(ob.Acks[0].Clone())
	if len(out) != 1 {
		t.Fatal("ACK consumed unexpectedly")
	}
	if ob.V.Stats().PacksConsumed == 0 {
		t.Fatal("PACK not consumed")
	}
	var sm stats.Sample
	sm.Add(1)
	_ = sm
}

// BenchmarkExtensionUDPTunnel measures the future-work UDP tunnel: a
// congestion-blind 9 Gbps blaster against a TCP tenant, with and without
// tunnel enforcement (fabric drops must go to zero with it).
func BenchmarkExtensionUDPTunnel(b *testing.B) {
	run := func(tunnel bool) (tcpG, udpG, fabricDrops float64) {
		ac := core.DefaultConfig()
		ac.UDPTunnel = tunnel
		net := topo.Star(3, topo.Options{
			Guest: tcpstack.DefaultConfig(),
			ACDC:  &ac,
			RED:   netsim.REDConfig{MarkThresholdBytes: topo.DefaultMarkThreshold},
			Seed:  3,
		})
		eps := make([]*udp.Endpoint, 3)
		for i := range eps {
			eps[i] = udp.NewEndpoint(net.Sim, net.Hosts[i])
		}
		m := workload.NewManager(net)
		f := workload.Bulk(m, 0, 2)
		var udpBytes int64
		eps[2].OnRecv = func(_ packet.Addr, _, _ uint16, n int) { udpBytes += int64(n) }
		eps[1].Blast(net.Addr(2), 6000, 7000, 8960, 9e9, 150*sim.Millisecond)
		net.Sim.RunFor(150 * sim.Millisecond)
		secs := net.Sim.Now().Seconds()
		return float64(f.Delivered()) * 8 / secs / 1e9,
			float64(udpBytes) * 8 / secs / 1e9,
			float64(net.TotalDrops())
	}
	for i := 0; i < b.N; i++ {
		tOff, uOff, dOff := run(false)
		tOn, uOn, dOn := run(true)
		b.ReportMetric(tOff, "notunnel_tcp_gbps")
		b.ReportMetric(uOff, "notunnel_udp_gbps")
		b.ReportMetric(dOff, "notunnel_fabric_drops")
		b.ReportMetric(tOn, "tunnel_tcp_gbps")
		b.ReportMetric(uOn, "tunnel_udp_gbps")
		b.ReportMetric(dOn, "tunnel_fabric_drops")
	}
}
