// Package acdc is a from-scratch Go reproduction of "AC/DC TCP: Virtual
// Congestion Control Enforcement for Datacenter Networks" (He et al.,
// SIGCOMM 2016): per-flow congestion control enforced in the virtual switch
// over arbitrary guest TCP stacks, together with the full substrate needed
// to evaluate it — a discrete-event datacenter network simulator, a TCP
// endpoint implementation with seven congestion-control variants, the
// paper's topologies and workloads, and a harness that regenerates every
// table and figure in the paper's evaluation.
//
// Package overview, bottom layer first:
//
//   - internal/sim — the discrete-event core: ns clock, binary-heap
//     scheduler, cancellable timers, deterministic seeded RNG.
//   - internal/packet — wire-format IPv4/TCP/UDP headers, TCP options
//     (MSS, WScale, SACK, the AC/DC PACK/FACK options), full and
//     incremental checksums, ECN codepoints.
//   - internal/netsim — the fabric: links, output-queued switches with a
//     shared dynamic buffer, WRED/ECN marking, token-bucket shapers, and
//     hosts exposing the vSwitch hook points.
//   - internal/cc — guest congestion-control laws (CUBIC, NewReno, DCTCP,
//     Vegas, Illinois, HighSpeed, window-based TIMELY).
//   - internal/tcpstack — guest TCP endpoints: handshake, SACK recovery,
//     RTO, delayed ACKs, window scaling, classic+DCTCP ECN, TSQ, and the
//     non-conforming IgnoreRwnd stack used to test policing.
//   - internal/core — the paper's contribution: the AC/DC vSwitch module.
//     Flow table, sender module (virtual DCTCP, RWND rewriting, policing),
//     receiver module (PACK/FACK feedback, ECN stripping), UDP tunnels.
//   - internal/metrics — the datapath observability layer: lock-free
//     counters/gauges/histograms, snapshots with delta/merge, text/JSON
//     encoders.
//   - internal/udp — minimal datagram endpoints for the tunnel demos.
//   - internal/topo — the paper's topologies (dumbbell, parking lot, star).
//   - internal/workload — traffic and measurement: bulk/incast/stride/
//     shuffle/trace-driven apps, FCT tracking, RTT probing.
//   - internal/stats — percentiles, CDFs, Jain's fairness, tables.
//   - internal/trace — web-search/data-mining flow-size distributions.
//   - internal/experiments — one Experiment per table/figure, plus per-run
//     datapath-metrics telemetry.
//
// Binaries: cmd/acdcsim (run experiments by ID), cmd/acdcreport (full
// Markdown report, -metrics for telemetry), cmd/acdctrace (annotated
// per-packet datapath trace). The examples/ directory holds five
// self-contained demos, starting with examples/quickstart.
//
// See README.md for a tour, ARCHITECTURE.md for the package map and packet
// lifecycle, DESIGN.md for the system inventory and substitutions, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each experiment (go test -bench=. -benchmem).
package acdc
