// Package acdc is a from-scratch Go reproduction of "AC/DC TCP: Virtual
// Congestion Control Enforcement for Datacenter Networks" (He et al.,
// SIGCOMM 2016): per-flow congestion control enforced in the virtual switch
// over arbitrary guest TCP stacks, together with the full substrate needed
// to evaluate it — a discrete-event datacenter network simulator, a TCP
// endpoint implementation with six congestion-control variants, the paper's
// topologies and workloads, and a harness that regenerates every table and
// figure in the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate each experiment
// (go test -bench=. -benchmem).
package acdc
